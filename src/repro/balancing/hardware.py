"""Hardware NI-driven balancing schemes (§4.3, §5, §6.1).

* :class:`SingleQueue` — RPCValet's 1×16: one NI dispatcher balancing
  all cores with the outstanding-per-core threshold (default 2).
* :class:`Grouped` — the intermediary design point (§4.3): "each NI
  backend can dispatch to a limited subset of cores"; 4×4 in the paper.
* :class:`Partitioned` — 16×1: RSS-style static assignment with no
  rebalancing ("the only currently existing NI-driven load distribution
  mechanism").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BalancingScheme, Dispatcher
from .policies import SelectionPolicy, make_policy

__all__ = ["SingleQueue", "Grouped", "Partitioned"]

#: §4.3: "in our implementation, this number is two".
DEFAULT_OUTSTANDING_LIMIT = 2


def _fresh_policy(policy: Optional[str]) -> SelectionPolicy:
    return make_policy(policy or "least_outstanding")


class Grouped(BalancingScheme):
    """``num_groups`` dispatchers, each balancing a contiguous core slice.

    Messages are sprayed uniformly across groups at arrival (the chip's
    group spray), matching the queueing models' ``uni[0, Q-1]``
    assignment; within a group the dispatcher balances dynamically.
    """

    def __init__(
        self,
        num_groups: int,
        outstanding_limit: Optional[int] = DEFAULT_OUTSTANDING_LIMIT,
        policy: Optional[str] = None,
    ) -> None:
        if num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups!r}")
        if outstanding_limit is not None and outstanding_limit < 1:
            raise ValueError(
                f"outstanding_limit must be >= 1 or None, got {outstanding_limit!r}"
            )
        self.num_groups = num_groups
        self.outstanding_limit = outstanding_limit
        self.policy_name = policy
        self.label = self._make_label()

    def _make_label(self) -> str:
        return f"grouped-{self.num_groups}"

    def install(self, chip, rng: np.random.Generator) -> None:
        num_cores = chip.config.num_cores
        if num_cores % self.num_groups != 0:
            raise ValueError(
                f"{num_cores} cores are not divisible into {self.num_groups} groups"
            )
        cores_per_group = num_cores // self.num_groups
        num_backends = chip.config.num_backends
        dispatchers = []
        for group in range(self.num_groups):
            core_ids = list(
                range(group * cores_per_group, (group + 1) * cores_per_group)
            )
            # Home the dispatcher on the backend nearest its core slice
            # (for 4 groups on 4 backends: one per row, as in §4.3).
            home_backend = group * num_backends // self.num_groups
            dispatchers.append(
                Dispatcher(
                    chip=chip,
                    group_id=group,
                    core_ids=core_ids,
                    outstanding_limit=self.outstanding_limit,
                    policy=_fresh_policy(self.policy_name),
                    home_backend_id=home_backend,
                    serialize_ns=chip.config.dispatch_ns,
                    rng=rng,
                )
            )
        chip.install_dispatchers(dispatchers)


class SingleQueue(Grouped):
    """RPCValet's 1×16: a single NI dispatcher over all cores (§4.3)."""

    def __init__(
        self,
        outstanding_limit: Optional[int] = DEFAULT_OUTSTANDING_LIMIT,
        policy: Optional[str] = None,
    ) -> None:
        super().__init__(
            num_groups=1, outstanding_limit=outstanding_limit, policy=policy
        )

    def _make_label(self) -> str:
        return "1xN"


class Partitioned(BalancingScheme):
    """16×1: static per-message (or per-source) assignment, no threshold.

    ``spray="message"`` assigns each message to a uniformly random core
    — exactly the queueing models' uni[0, N-1]. ``spray="source"``
    models real RSS more closely: a static hash of the source node, so
    all messages of one sender land on the same core.
    """

    label = "Nx1"

    def __init__(self, spray: str = "message") -> None:
        if spray not in ("message", "source"):
            raise ValueError(f"spray must be 'message' or 'source', got {spray!r}")
        self.spray = spray

    def install(self, chip, rng: np.random.Generator) -> None:
        num_cores = chip.config.num_cores
        dispatchers = [
            Dispatcher(
                chip=chip,
                group_id=core_id,
                core_ids=[core_id],
                outstanding_limit=None,  # push on arrival, queue at the core
                policy=make_policy("round_robin"),
                home_backend_id=core_id
                * chip.config.num_backends
                // num_cores,
                serialize_ns=chip.config.dispatch_ns,
                rng=rng,
            )
            for core_id in range(num_cores)
        ]
        chip.install_dispatchers(dispatchers)
        if self.spray == "source":
            # Replace the chip's uniform per-message spray with a static
            # RSS-style hash of the source node.
            salt = int(rng.integers(0, 2**31))

            def source_hash(msg) -> int:
                return ((msg.src_node * 0x9E3779B1) ^ salt) % num_cores

            chip.group_spray_override = source_hash
