"""Wiring a TelemetryHub into the architectural simulator.

:func:`instrument_chip` attaches histograms and periodic probes at the
load-bearing points of a built :class:`~repro.arch.chip.Chip`:

* **dispatcher decisions** — shared-CQ depth at every enqueue, the
  chosen core's outstanding count at every dispatch, and a dispatch
  counter (:mod:`repro.balancing.base`);
* **QP/CQ depth** — private-CQ depth at every CQE write
  (:mod:`repro.arch.qp`);
* **NI backend pipeline depth** at every ingress message
  (:mod:`repro.arch.backend`);
* **receive-buffer occupancy** at every slot claim
  (:mod:`repro.arch.buffers`);
* **periodic probes** (→ Perfetto counter tracks): per-dispatcher
  shared-CQ length, per-core outstanding count, per-backend pipeline
  depth, and receive slots in use.

The instrumented sites all guard with a single ``is not None`` check,
so a chip that is *not* instrumented pays nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .hub import TelemetryHub

if TYPE_CHECKING:  # pragma: no cover
    from ..arch.chip import Chip
    from ..cluster.cluster import Cluster
    from ..workloads.traffic import TrafficGenerator

__all__ = ["instrument_chip", "instrument_cluster", "instrument_traffic"]

#: Canonical metric names used by :func:`instrument_chip`.
PRIVATE_CQ_DEPTH = "arch.private_cq_depth"
SHARED_CQ_DEPTH = "arch.shared_cq_depth"
DISPATCH_OUTSTANDING = "arch.dispatch_outstanding"
DISPATCHES = "arch.dispatches"
BACKEND_DEPTH = "arch.backend_pipeline_depth"
RECV_SLOTS = "arch.recv_slots_occupied"


def instrument_chip(chip: "Chip", hub: TelemetryHub) -> TelemetryHub:
    """Attach ``hub``'s probes to every instrumented site of ``chip``.

    Must be called after the balancing scheme is installed (it probes
    the dispatchers) and before the run starts. Returns ``hub``.
    """
    if not chip.dispatchers:
        raise RuntimeError("instrument_chip: no balancing scheme installed yet")
    chip.telemetry = hub

    # Event-driven histograms: one shared instance per metric, so the
    # distribution is chip-wide and merges cleanly across workers.
    private_cq = hub.histogram(PRIVATE_CQ_DEPTH)
    for core in chip.cores:
        core.qp.depth_hist = private_cq

    shared_cq = hub.histogram(SHARED_CQ_DEPTH)
    decisions = hub.histogram(DISPATCH_OUTSTANDING)
    dispatches = hub.counter(DISPATCHES)
    for dispatcher in chip.dispatchers:
        dispatcher.cq_depth_hist = shared_cq
        dispatcher.decision_hist = decisions
        dispatcher.dispatch_counter = dispatches

    backend_depth = hub.histogram(BACKEND_DEPTH)
    for backend in chip.backends:
        backend.depth_hist = backend_depth

    chip.receive_buffer.occupancy_hist = hub.histogram(RECV_SLOTS)

    # Periodic probes: per-component queue-length counter tracks.
    for dispatcher in chip.dispatchers:
        hub.add_probe(
            f"shared_cq[{dispatcher.group_id}]",
            lambda d=dispatcher: len(d.shared_cq),
        )
    for dispatcher in chip.dispatchers:
        for core_id in dispatcher.core_ids:
            hub.add_probe(
                f"outstanding[core{core_id:02d}]",
                lambda d=dispatcher, c=core_id: d.outstanding[c],
            )
    for backend in chip.backends:
        hub.add_probe(
            f"backend[{backend.backend_id}].pipeline",
            lambda b=backend: len(b._pipeline),
        )
    hub.add_probe("recv_slots", lambda rb=chip.receive_buffer: rb.occupied)
    return hub


#: Canonical metric names of the traffic-side offered-load tracks.
OFFERED_RATE = "traffic.offered_rate_rps"
OFFERED_ARRIVALS = "traffic.generated"


def instrument_traffic(
    traffic: "TrafficGenerator", hub: TelemetryHub
) -> TelemetryHub:
    """Attach offered-load probes to a traffic generator.

    Two periodic counter tracks (→ Perfetto): the *intended* offered
    rate λ(t) in requests/second (:data:`OFFERED_RATE` — constant for
    the paper's stationary Poisson, the profile curve for
    population-driven processes from :mod:`repro.popload`), and the
    cumulative generated-arrival count (:data:`OFFERED_ARRIVALS`).
    Probes added after the hub's sampler is attached still sample —
    the sampler reads the hub's probe list by reference.
    """
    env = traffic.chip.env
    hub.add_probe(
        OFFERED_RATE, lambda t=traffic, e=env: t.offered_rate_rps(e.now)
    )
    hub.add_probe(OFFERED_ARRIVALS, lambda t=traffic: t.generated)
    return hub


#: Canonical metric name of the router staleness-error histogram.
RACK_SIGNAL_ERROR = "rack.signal_error"

#: Canonical metric name of the failure-detector latency histogram.
FAULT_DETECTION_LATENCY = "faults.detection_latency_ns"


def instrument_cluster(cluster: "Cluster", hub: TelemetryHub) -> TelemetryHub:
    """Attach cluster-level probes to every node of ``cluster``.

    Periodic probes (→ Perfetto counter tracks), all off unless the
    cluster was built with ``telemetry=True``:

    * ``shared_cq[node{i}]`` — entries waiting in node *i*'s dispatcher
      shared CQ(s), the server-side backlog rack routing reacts to;
    * ``send_credits[node{i}]`` — send-slot credits node *i* currently
      holds across the fabric (cross-node flow-control pressure);
    * ``rack.outstanding[node{i}]`` — the router's ground-truth
      outstanding-load gauge per destination (router runs only).

    Event-driven rack instrumentation (router runs only): one routed
    counter per destination plus the total decision counter, and a
    histogram of |estimate - true load| at each load-aware decision
    (:data:`RACK_SIGNAL_ERROR` — the staleness error the ``ext-rack``
    sweep studies).
    """
    for node in cluster.nodes:
        hub.add_probe(
            f"shared_cq[node{node.node_id}]",
            lambda n=node: n.shared_cq_depth(),
        )
    for node in cluster.nodes:
        hub.add_probe(
            f"send_credits[node{node.node_id}]",
            lambda n=node: n.slots_in_use(),
        )
    router = cluster.router
    if router is not None:
        for node_id in range(cluster.num_nodes):
            hub.add_probe(
                f"rack.outstanding[node{node_id}]",
                lambda r=router, i=node_id: r.outstanding[i],
            )
        router.decision_counters = [
            hub.counter(f"rack.routed[node{node_id}]")
            for node_id in range(cluster.num_nodes)
        ]
        router.staleness_hist = hub.histogram(RACK_SIGNAL_ERROR)
    injector = getattr(cluster, "injector", None)
    if injector is not None:
        # Fault-layer counter tracks: nodes currently down, plus the
        # cumulative retry / hedge / timeout / fabric-drop activity —
        # sampled from the injector's running stats so Perfetto shows
        # when a retry storm ignites, not just its final total.
        hub.add_probe("faults.nodes_down", lambda inj=injector: inj.nodes_down())
        stats = injector.stats
        hub.add_probe("faults.retries", lambda s=stats: s.retries)
        hub.add_probe("faults.hedges", lambda s=stats: s.hedges)
        hub.add_probe("faults.timeouts", lambda s=stats: s.timeouts)
        hub.add_probe("faults.msg_drops", lambda s=stats: s.msg_drops)
        if router is not None and router.suspect_after_ns is not None:
            router.detection_hist = hub.histogram(FAULT_DETECTION_LATENCY)
    return hub
