"""Mergeable low-overhead telemetry primitives.

Four building blocks, all picklable (they cross process boundaries in
parallel sweeps) and all mergeable (per-worker instances combine into
one consistent view, independent of worker count):

* :class:`Counter` — a monotonically increasing count;
* :class:`Gauge` — a last-value-wins reading with min/max envelope;
* :class:`Histogram` — a log-bucketed streaming histogram: O(1) memory
  per decade of dynamic range, ~constant relative quantile error, and
  exact count/sum/min/max;
* :class:`TimeSeries` — (time, value) samples from the periodic
  snapshot sampler, renderable as Perfetto counter tracks.

Merging is associative and order-independent for counters, gauges, and
histograms, so ``merge(merge(a, b), c) == merge(a, merge(b, c))`` and a
sweep's merged telemetry is identical however its points were
distributed over workers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries", "DEFAULT_BUCKETS_PER_OCTAVE"]

#: Default histogram resolution: 8 buckets per power of two, i.e. a
#: bucket-width ratio of 2^(1/8) ≈ 1.09 (≤ ~4.5% quantile error).
DEFAULT_BUCKETS_PER_OCTAVE = 8


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "", value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Combine two counters (sum); returns self."""
        self.value += other.value
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self.name == other.name and self.value == other.value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time reading with a min/max envelope.

    Merging keeps the widest envelope and the *other* gauge's last
    value (merge order is the task order, so "last" is well defined
    and worker-count independent).
    """

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: float = float("nan")
        self.min: float = float("inf")
        self.max: float = float("-inf")
        self.updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def merge(self, other: "Gauge") -> "Gauge":
        if other.updates:
            self.value = other.value
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.updates += other.updates
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gauge):
            return NotImplemented

        def _same(a: float, b: float) -> bool:
            return a == b or (math.isnan(a) and math.isnan(b))

        return (
            self.name == other.name
            and _same(self.value, other.value)
            and self.min == other.min
            and self.max == other.max
            and self.updates == other.updates
        )

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} [{self.min}, {self.max}]>"


class Histogram:
    """A log-bucketed streaming histogram of non-negative values.

    Values land in geometric buckets ``[b^i, b^(i+1))`` with
    ``b = 2^(1/buckets_per_octave)``; bucket counts live in a sparse
    dict, so memory is proportional to the *occupied* dynamic range,
    not the value range. Count, sum, min, and max are tracked exactly;
    quantiles carry the bucket ratio's relative error. Zeros get a
    dedicated bucket (queue depths are mostly zero at low load).
    """

    __slots__ = (
        "name",
        "buckets_per_octave",
        "_inv_log_base",
        "_base",
        "counts",
        "zero_count",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str = "",
        buckets_per_octave: int = DEFAULT_BUCKETS_PER_OCTAVE,
    ) -> None:
        if buckets_per_octave < 1:
            raise ValueError(
                f"buckets_per_octave must be >= 1, got {buckets_per_octave!r}"
            )
        self.name = name
        self.buckets_per_octave = buckets_per_octave
        self._inv_log_base = buckets_per_octave / math.log(2.0)
        self._base = 2.0 ** (1.0 / buckets_per_octave)
        self.counts: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- recording ------------------------------------------------------------

    def record(self, value: float) -> None:
        """Record one observation (non-negative)."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value!r}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0:
            self.zero_count += 1
            return
        index = self._bucket_index(value)
        counts = self.counts
        counts[index] = counts.get(index, 0) + 1

    def _bucket_index(self, value: float) -> int:
        """Bucket of ``value``, exact at bucket edges.

        ``floor(log(value) / log(base))`` alone misplaces values landing
        exactly on a bucket edge (e.g. ``8.0`` at 64 buckets/octave,
        where float error yields 191.99999999999997 -> bucket 191): the
        value then sits in a bucket whose bounds exclude it, and
        quantiles drift a full bucket low. Snap boundary-adjacent
        results against the exact bucket bounds.
        """
        scaled = math.log(value) * self._inv_log_base
        index = math.floor(scaled)
        fraction = scaled - index
        if fraction < 1e-7 or fraction > 1.0 - 1e-7:
            base = self._base
            if value >= base ** (index + 1):
                index += 1
            elif value < base**index:
                index -= 1
        return index

    def record_many(self, values: np.ndarray) -> None:
        """Vectorized :meth:`record` for an array of observations."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if np.any(values < 0):
            raise ValueError("histogram values must be >= 0")
        self.count += int(values.size)
        self.total += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        positive = values[values > 0]
        self.zero_count += int(values.size - positive.size)
        if positive.size == 0:
            return
        scaled = np.log(positive) * self._inv_log_base
        indices = np.floor(scaled).astype(np.int64)
        # Same edge snapping as :meth:`_bucket_index`, applied only to
        # the boundary-adjacent entries so the bulk stays vectorized.
        fractions = scaled - indices
        near_edge = np.flatnonzero((fractions < 1e-7) | (fractions > 1.0 - 1e-7))
        for position in near_edge.tolist():
            indices[position] = self._bucket_index(float(positive[position]))
        uniques, counts = np.unique(indices, return_counts=True)
        bucket_counts = self.counts
        for index, count in zip(uniques.tolist(), counts.tolist()):
            bucket_counts[index] = bucket_counts.get(index, 0) + count

    # -- reading --------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """The ``[low, high)`` value range of bucket ``index``."""
        base = self._base
        return base**index, base ** (index + 1)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (geometric bucket midpoint).

        Exact at the distribution's min/max ends (tracked exactly);
        otherwise within one bucket ratio of the true value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        if target <= self.zero_count and self.zero_count > 0:
            return 0.0
        seen = self.zero_count
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= target:
                low, high = self.bucket_bounds(index)
                mid = math.sqrt(low * high)
                return min(max(mid, self.min), self.max)
        return self.max

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (``p`` in [0, 100])."""
        return self.quantile(p / 100.0)

    # -- merging --------------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s buckets into this histogram; returns self."""
        if other.buckets_per_octave != self.buckets_per_octave:
            raise ValueError(
                "cannot merge histograms with different resolutions: "
                f"{self.buckets_per_octave} vs {other.buckets_per_octave}"
            )
        counts = self.counts
        for index, count in other.counts.items():
            counts[index] = counts.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def copy(self) -> "Histogram":
        clone = Histogram(self.name, self.buckets_per_octave)
        clone.counts = dict(self.counts)
        clone.zero_count = self.zero_count
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.name == other.name
            and self.buckets_per_octave == other.buckets_per_octave
            and self.counts == other.counts
            and self.zero_count == other.zero_count
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name} n={self.count} "
            f"mean={self.mean:.3g} max={self.max:.3g}>"
        )


class TimeSeries:
    """(time, value) samples appended by the periodic sampler."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def extend(self, other: "TimeSeries") -> "TimeSeries":
        """Concatenate another series (used when merging task snapshots)."""
        self.times.extend(other.times)
        self.values.extend(other.values)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.name == other.name
            and self.times == other.times
            and self.values == other.values
        )

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name} n={len(self.times)}>"


def merge_histograms(histograms: Iterable[Histogram]) -> Optional[Histogram]:
    """Merge an iterable of histograms into a fresh one (None if empty)."""
    merged: Optional[Histogram] = None
    for histogram in histograms:
        if merged is None:
            merged = histogram.copy()
        else:
            merged.merge(histogram)
    return merged
