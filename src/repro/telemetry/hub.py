"""TelemetryHub: the probe registry behind every instrumented run.

One hub exists per simulation run (when telemetry is enabled at all —
the disabled path never allocates one). Instrumented components hold
direct references to the hub's primitives, so the per-event cost of an
*enabled* probe is one attribute load plus one ``record`` call, and the
cost of a *disabled* probe is a single ``is not None`` check.

The hub also owns the **periodic snapshot sampler**: probes registered
with :meth:`TelemetryHub.add_probe` are polled every
``sample_interval`` simulated time units by the DES engine (see
:meth:`repro.sim.Environment.attach_sampler`), producing
:class:`~repro.telemetry.primitives.TimeSeries` that export as Perfetto
counter tracks.

At the end of a run, :meth:`TelemetryHub.snapshot` freezes everything
into a picklable :class:`TelemetrySnapshot`; snapshots from parallel
workers merge with :func:`merge_snapshots` into a view identical to a
serial run's (tested in ``tests/test_telemetry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .primitives import (
    DEFAULT_BUCKETS_PER_OCTAVE,
    Counter,
    Gauge,
    Histogram,
    TimeSeries,
)

__all__ = ["TelemetryHub", "PeriodicSampler", "TelemetrySnapshot", "merge_snapshots"]


class TelemetryHub:
    """Registry of named counters, gauges, histograms, and probes."""

    def __init__(self, sample_interval: Optional[float] = None) -> None:
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval!r}"
            )
        self.sample_interval = sample_interval
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []

    # -- primitive registry ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets_per_octave: int = DEFAULT_BUCKETS_PER_OCTAVE
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, buckets_per_octave)
        return histogram

    def add_probe(self, name: str, read: Callable[[], float]) -> TimeSeries:
        """Register a probe sampled periodically into a time series.

        ``read`` is called with no arguments at every sampler tick and
        must return the current value (e.g. ``lambda: len(queue)``).
        """
        if name in self.series:
            raise ValueError(f"probe {name!r} already registered")
        series = self.series[name] = TimeSeries(name)
        self._probes.append((series, read))
        return series

    # -- sampling ---------------------------------------------------------------

    def make_sampler(self, start: float = 0.0) -> Optional["PeriodicSampler"]:
        """Build the periodic sampler, or None if there is nothing to do."""
        if self.sample_interval is None or not self._probes:
            return None
        return PeriodicSampler(self._probes, self.sample_interval, start=start)

    # -- snapshotting -----------------------------------------------------------

    def snapshot(self) -> "TelemetrySnapshot":
        """Freeze the hub's state into a picklable snapshot.

        The snapshot *references* the hub's primitives (no copy); it is
        taken once at the end of a run, after which the hub is discarded.
        """
        return TelemetrySnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms=dict(self.histograms),
            series=dict(self.series),
        )


class PeriodicSampler:
    """Polls probes at fixed simulated-time intervals.

    The DES engine drives it: before processing an event at time ``t``,
    it calls :meth:`advance` whenever ``t >= next_at``, which samples
    every due tick up to ``t``. Sampling therefore happens only while
    the simulation has events — the run still terminates naturally.
    """

    __slots__ = ("interval", "next_at", "_probes")

    def __init__(
        self,
        probes: List[Tuple[TimeSeries, Callable[[], float]]],
        interval: float,
        start: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.interval = interval
        self.next_at = start + interval
        self._probes = probes

    def advance(self, now: float) -> None:
        """Sample every due tick ``<= now`` (state as of just before it)."""
        probes = self._probes
        interval = self.interval
        tick = self.next_at
        while tick <= now:
            for series, read in probes:
                series.append(tick, read())
            tick += interval
        self.next_at = tick


@dataclass
class TelemetrySnapshot:
    """Frozen, picklable telemetry of one run (or a merge of many)."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold ``other`` into this snapshot in place; returns self.

        Counters sum, gauges keep the widest envelope, histograms merge
        bucket-wise. Series with colliding names are concatenated in
        merge order (each task's series keeps its own time axis, so
        per-run series are best read from the per-point snapshots).
        """
        for name, counter in other.counters.items():
            if name in self.counters:
                self.counters[name].merge(counter)
            else:
                clone = Counter(name)
                clone.merge(counter)
                self.counters[name] = clone
        for name, gauge in other.gauges.items():
            if name in self.gauges:
                self.gauges[name].merge(gauge)
            else:
                clone = Gauge(name)
                clone.merge(gauge)
                self.gauges[name] = clone
        for name, histogram in other.histograms.items():
            if name in self.histograms:
                self.histograms[name].merge(histogram)
            else:
                self.histograms[name] = histogram.copy()
        for name, series in other.series.items():
            if name in self.series:
                self.series[name].extend(series)
            else:
                clone = TimeSeries(name)
                clone.extend(series)
                self.series[name] = clone
        return self


def merge_snapshots(
    snapshots: Iterable[Optional[TelemetrySnapshot]],
) -> Optional[TelemetrySnapshot]:
    """Merge task snapshots (in task order) into one fresh snapshot.

    ``None`` entries (tasks without telemetry, or dropped points) are
    skipped. Returns ``None`` when nothing merges. Because counter,
    gauge, and histogram merging is order-independent *and* the caller
    iterates in task order, the result is bit-identical no matter how
    tasks were distributed over workers.
    """
    merged: Optional[TelemetrySnapshot] = None
    for snapshot in snapshots:
        if snapshot is None:
            continue
        if merged is None:
            merged = TelemetrySnapshot()
        merged.merge(snapshot)
    return merged
