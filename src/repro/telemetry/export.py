"""Exporting telemetry snapshots: JSONL, CSV, and unified Perfetto traces.

Plain-text formats for external tooling (pandas, jq, spreadsheets):

* :func:`write_snapshot_jsonl` — one JSON object per line, one line per
  counter/gauge/histogram/series; self-describing via a ``kind`` field;
* :func:`series_csv` / :func:`write_series_csv` — long-format
  ``series,time,value`` rows of every sampled time series.

Plus the one-stop Perfetto exporter, :func:`export_unified_trace`: it
combines every trace-shaped artifact the repo produces — per-message
stage bars (:func:`repro.metrics.chrome_trace_events`), per-RPC span
trees (:func:`repro.tracing.span_trace_events`), and telemetry counter
tracks — into a single Trace Event Format file, so queue-depth charts,
NI/dispatcher/core bars, and client-side span trees line up on one
timeline at https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Iterator, Optional, Sequence, Union

from .hub import TelemetrySnapshot

__all__ = [
    "snapshot_jsonl_lines",
    "write_snapshot_jsonl",
    "series_csv",
    "write_series_csv",
    "export_unified_trace",
]


def snapshot_jsonl_lines(snapshot: TelemetrySnapshot) -> Iterator[str]:
    """Yield one compact JSON line per telemetry object, sorted by name."""
    for name in sorted(snapshot.counters):
        counter = snapshot.counters[name]
        yield json.dumps(
            {"kind": "counter", "name": name, "value": counter.value},
            sort_keys=True,
        )
    for name in sorted(snapshot.gauges):
        gauge = snapshot.gauges[name]
        yield json.dumps(
            {
                "kind": "gauge",
                "name": name,
                "value": None if gauge.updates == 0 else gauge.value,
                "min": None if gauge.updates == 0 else gauge.min,
                "max": None if gauge.updates == 0 else gauge.max,
                "updates": gauge.updates,
            },
            sort_keys=True,
        )
    for name in sorted(snapshot.histograms):
        histogram = snapshot.histograms[name]
        empty = histogram.count == 0
        yield json.dumps(
            {
                "kind": "histogram",
                "name": name,
                "buckets_per_octave": histogram.buckets_per_octave,
                "count": histogram.count,
                "sum": histogram.total,
                "min": None if empty else histogram.min,
                "max": None if empty else histogram.max,
                "zero_count": histogram.zero_count,
                "p50": None if empty else histogram.quantile(0.50),
                "p99": None if empty else histogram.quantile(0.99),
                "buckets": {
                    str(index): histogram.counts[index]
                    for index in sorted(histogram.counts)
                },
            },
            sort_keys=True,
        )
    for name in sorted(snapshot.series):
        series = snapshot.series[name]
        yield json.dumps(
            {
                "kind": "series",
                "name": name,
                "times": list(series.times),
                "values": list(series.values),
            },
            sort_keys=True,
        )


def write_snapshot_jsonl(
    snapshot: TelemetrySnapshot, destination: Union[str, pathlib.Path, IO[str]]
) -> int:
    """Write a snapshot as JSON-lines; returns the number of lines."""
    lines = list(snapshot_jsonl_lines(snapshot))
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        pathlib.Path(destination).write_text(text, encoding="utf-8")
    return len(lines)


def series_csv(snapshot: TelemetrySnapshot) -> str:
    """Long-format CSV (``series,time,value``) of every time series."""
    rows = ["series,time,value"]
    for name in sorted(snapshot.series):
        series = snapshot.series[name]
        for time, value in zip(series.times, series.values):
            rows.append(f"{name},{time:g},{value:g}")
    return "\n".join(rows) + "\n"


def write_series_csv(
    snapshot: TelemetrySnapshot, destination: Union[str, pathlib.Path, IO[str]]
) -> int:
    """Write the time-series CSV; returns the number of data rows."""
    text = series_csv(snapshot)
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        pathlib.Path(destination).write_text(text, encoding="utf-8")
    return text.count("\n") - 1


def export_unified_trace(
    destination: Union[str, pathlib.Path, IO[str]],
    messages: Sequence = (),
    spans=None,
    telemetry: Optional[TelemetrySnapshot] = None,
) -> int:
    """One Perfetto file: message bars + span trees + counter tracks.

    ``messages`` are completed :class:`repro.arch.SendMessage` records
    (per-RPC bars on NI/dispatcher/core tracks), ``spans`` a
    :class:`repro.tracing.TraceBuffer` (or iterable of traces), and
    ``telemetry`` a snapshot whose time series become counter tracks.
    Any subset may be given; returns the total event count.
    """
    events = []
    if messages:
        from ..metrics.chrometrace import chrome_trace_events

        events.extend(chrome_trace_events(messages))
    if spans is not None:
        from ..tracing.export import span_trace_events

        events.extend(span_trace_events(spans))
    if telemetry is not None:
        from ..metrics.chrometrace import telemetry_counter_events

        events.extend(telemetry_counter_events(telemetry))
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return len(events)
