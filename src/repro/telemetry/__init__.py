"""Simulation telemetry: streaming histograms, probes, and exporters.

The observability layer behind the reproduction's distribution-shape
claims. Everything is:

* **low-overhead** — instrumented hot paths pay one ``is not None``
  check when telemetry is off, and the DES engine's run loop is
  untouched unless a sampler is attached;
* **mergeable** — per-worker histograms/counters combine into one view
  that is bit-identical at any worker count (the same contract as the
  parallel sweep engine itself);
* **exportable** — JSONL/CSV time series here, Perfetto counter tracks
  via :mod:`repro.metrics.chrometrace`.

Quickstart::

    from repro import RpcValetSystem, SingleQueue, SyntheticWorkload

    system = RpcValetSystem(
        SingleQueue(), SyntheticWorkload("gev"), seed=1, telemetry=True
    )
    result = system.run_point(offered_mrps=8.0, num_requests=20_000)
    snap = result.telemetry
    print(snap.histograms["arch.shared_cq_depth"].quantile(0.99))
"""

from .hub import PeriodicSampler, TelemetryHub, TelemetrySnapshot, merge_snapshots
from .export import (
    export_unified_trace,
    series_csv,
    snapshot_jsonl_lines,
    write_series_csv,
    write_snapshot_jsonl,
)
from .primitives import (
    Counter,
    DEFAULT_BUCKETS_PER_OCTAVE,
    Gauge,
    Histogram,
    TimeSeries,
    merge_histograms,
)
from .probes import instrument_chip, instrument_cluster, instrument_traffic

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "DEFAULT_BUCKETS_PER_OCTAVE",
    "merge_histograms",
    "TelemetryHub",
    "PeriodicSampler",
    "TelemetrySnapshot",
    "merge_snapshots",
    "instrument_chip",
    "instrument_cluster",
    "instrument_traffic",
    "snapshot_jsonl_lines",
    "write_snapshot_jsonl",
    "series_csv",
    "write_series_csv",
    "export_unified_trace",
]
