"""Preemptive scheduling and request hedging (related-work extensions)."""

import numpy as np
import pytest

from repro.queueing import (
    RandomRouter,
    poisson_arrivals,
    simulate_fifo_queue,
    simulate_hedged_queues,
    simulate_preemptive_queue,
    simulate_routed_queues,
)


def masstree_like_services(rng, n, scan_fraction=0.01):
    """~1µs gets + rare 60-120µs scans (in µs units)."""
    is_scan = rng.uniform(size=n) < scan_fraction
    gets = rng.gamma(3.0, 1.25 / 3.0, n)
    scans = rng.uniform(60.0, 120.0, n)
    return np.where(is_scan, scans, gets), ~is_scan


class TestPreemption:
    def test_infinite_quantum_equals_fifo(self):
        rng = np.random.default_rng(1)
        n = 20_000
        arrivals = poisson_arrivals(rng, 12.0, n)
        services = rng.exponential(1.0, n)
        fifo = simulate_fifo_queue(arrivals, services, 16) - arrivals
        result = simulate_preemptive_queue(
            arrivals, services, 16, quantum=float("inf")
        )
        np.testing.assert_allclose(result.sojourns, fifo, rtol=1e-12)
        assert result.preemptions == 0

    def test_quantum_bounds_head_of_line_blocking(self):
        # One huge job + a stream of tiny ones on a single server:
        # without preemption the tiny jobs wait the whole huge job;
        # with quantum 1 they wait at most ~1 per round.
        arrivals = np.array([0.0, 0.1, 0.2])
        services = np.array([100.0, 0.5, 0.5])
        fifo = simulate_fifo_queue(arrivals, services, 1) - arrivals
        assert fifo[1] > 99.0
        preempted = simulate_preemptive_queue(
            arrivals, services, 1, quantum=1.0
        )
        assert preempted.sojourns[1] < 3.0
        assert preempted.preemptions >= 99

    def test_preemption_overhead_charged(self):
        arrivals = np.array([0.0])
        services = np.array([10.0])
        result = simulate_preemptive_queue(
            arrivals, services, 1, quantum=1.0, preemption_overhead=0.5
        )
        # The overhead is itself core work subject to slicing: total
        # occupancy T solves T = 10 + 0.5·(ceil(T) − 1) → T = 19 with
        # 18 preemptions.
        assert result.preemptions == 18
        assert result.sojourns[0] == pytest.approx(19.0)
        assert result.preemptions_per_job == pytest.approx(18.0)

    def test_zero_overhead_preemption_count(self):
        arrivals = np.array([0.0])
        services = np.array([10.0])
        result = simulate_preemptive_queue(arrivals, services, 1, quantum=1.0)
        assert result.preemptions == 9
        assert result.sojourns[0] == pytest.approx(10.0)

    def test_get_tail_improves_for_masstree_mix_single_server_queues(self):
        rng = np.random.default_rng(2)
        n = 40_000
        services, is_get = masstree_like_services(rng, n)
        arrivals = poisson_arrivals(rng, 0.5 / services.mean(), n)
        fifo = simulate_fifo_queue(arrivals, services, 1) - arrivals
        preempted = simulate_preemptive_queue(
            arrivals, services, 1, quantum=5.0, preemption_overhead=0.1
        )
        fifo_get_p99 = np.percentile(fifo[is_get][n // 10:], 99)
        preempted_get_p99 = np.percentile(
            preempted.sojourns[is_get][n // 10:], 99
        )
        assert preempted_get_p99 < 0.5 * fifo_get_p99

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_preemptive_queue(np.zeros(1), np.ones(1), 1, quantum=0.0)
        with pytest.raises(ValueError):
            simulate_preemptive_queue(np.zeros(1), np.ones(1), 0, quantum=1.0)
        with pytest.raises(ValueError):
            simulate_preemptive_queue(
                np.zeros(1), np.ones(1), 1, quantum=1.0, preemption_overhead=-1.0
            )
        with pytest.raises(ValueError):
            simulate_preemptive_queue(
                np.array([1.0, 0.0]), np.ones(2), 1, quantum=1.0
            )


class TestHedging:
    def run_pair(self, load=0.5, copies=2, n=40_000, seed=3):
        rng = np.random.default_rng(seed)
        arrivals = poisson_arrivals(rng, 16.0 * load, n)
        services = rng.exponential(1.0, n)
        plain = simulate_routed_queues(
            arrivals, services, 16, 1, RandomRouter(), np.random.default_rng(4)
        )
        hedged = simulate_hedged_queues(
            arrivals, services, 16, copies=copies, rng=np.random.default_rng(4)
        )
        return plain[n // 10:], hedged

    def test_hedging_cuts_tail_at_moderate_load(self):
        plain, hedged = self.run_pair(load=0.5)
        n = hedged.sojourns.size
        assert np.percentile(hedged.sojourns[n // 10:], 99) < np.percentile(
            plain, 99
        )

    def test_hedging_wastes_work(self):
        _plain, hedged = self.run_pair(load=0.5)
        # §7's objection: duplication executes redundant requests.
        assert hedged.waste_fraction > 0.2
        assert hedged.wasted_work == pytest.approx(
            hedged.total_work * hedged.waste_fraction
        )

    def test_single_copy_is_plain_random(self):
        rng = np.random.default_rng(5)
        n = 20_000
        arrivals = poisson_arrivals(rng, 8.0, n)
        services = rng.exponential(1.0, n)
        hedged = simulate_hedged_queues(
            arrivals, services, 16, copies=1, rng=np.random.default_rng(6)
        )
        assert hedged.waste_fraction == 0.0
        plain = simulate_routed_queues(
            arrivals, services, 16, 1, RandomRouter(), np.random.default_rng(7)
        )
        assert np.percentile(hedged.sojourns, 99) == pytest.approx(
            np.percentile(plain, 99), rel=0.3
        )

    def test_hedging_backfires_at_high_load(self):
        # The added load saturates the system: hedging must eventually
        # hurt (the paper's argument against client-side duplication at
        # µs scale).
        plain, hedged = self.run_pair(load=0.8)
        n = hedged.sojourns.size
        assert np.percentile(hedged.sojourns[n // 10:], 99) > np.percentile(
            plain, 99
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_hedged_queues(np.zeros(1), np.ones(1), 1, copies=1)
        with pytest.raises(ValueError):
            simulate_hedged_queues(np.zeros(1), np.ones(1), 4, copies=5)
        with pytest.raises(ValueError):
            simulate_hedged_queues(np.array([1.0, 0.0]), np.ones(2), 4)
