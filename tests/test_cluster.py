"""Multi-node cluster simulation."""

import pytest

from repro.balancing import Partitioned, SingleQueue
from repro.cluster import Cluster, PodFabric, UniformFabric
from repro.workloads import SyntheticWorkload


class TestFabric:
    def test_uniform(self):
        fabric = UniformFabric(4, latency_ns=123.0)
        assert fabric.latency_ns(0, 3) == 123.0
        assert fabric.latency_ns(3, 0) == 123.0

    def test_self_loop_rejected(self):
        fabric = UniformFabric(4)
        with pytest.raises(ValueError):
            fabric.latency_ns(1, 1)

    def test_out_of_range(self):
        fabric = UniformFabric(4)
        with pytest.raises(ValueError):
            fabric.latency_ns(0, 4)

    def test_pod_fabric(self):
        fabric = PodFabric(6, pod_size=3, intra_pod_ns=50.0, inter_pod_ns=700.0)
        assert fabric.latency_ns(0, 2) == 50.0  # same pod
        assert fabric.latency_ns(0, 3) == 700.0  # across pods
        assert fabric.pod_of(5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformFabric(1)
        with pytest.raises(ValueError):
            UniformFabric(4, latency_ns=-1.0)
        with pytest.raises(ValueError):
            PodFabric(4, pod_size=0)


class TestCluster:
    def test_conservation(self):
        cluster = Cluster(num_nodes=3, seed=1)
        result = cluster.run(per_node_mrps=10.0, requests_per_node=2_000)
        assert result.completed == 3 * 2_000
        generated = sum(node.generated for node in cluster.nodes)
        assert generated == 3 * 2_000

    def test_total_throughput_scales_with_nodes(self):
        small = Cluster(num_nodes=2, seed=1).run(10.0, 2_000)
        large = Cluster(num_nodes=4, seed=1).run(10.0, 2_000)
        assert large.total_throughput_mrps == pytest.approx(
            2 * small.total_throughput_mrps, rel=0.1
        )

    def test_balanced_across_nodes(self):
        cluster = Cluster(num_nodes=4, seed=2)
        result = cluster.run(per_node_mrps=15.0, requests_per_node=3_000)
        assert result.imbalance() < 1.2
        assert all(summary.count > 0 for summary in result.per_node)

    def test_single_queue_beats_partitioned_clusterwide(self):
        single = Cluster(num_nodes=3, scheme_factory=SingleQueue, seed=3).run(
            20.0, 3_000
        )
        partitioned = Cluster(
            num_nodes=3, scheme_factory=Partitioned, seed=3
        ).run(20.0, 3_000)
        assert single.p99_ns < partitioned.p99_ns

    def test_fabric_latency_does_not_change_server_latency(self):
        # §5 measures latency from NI reception to replenish post —
        # fabric delay shifts arrival times, not the measured window.
        near = Cluster(
            num_nodes=3, fabric=UniformFabric(3, 50.0), seed=4
        ).run(10.0, 2_000)
        far = Cluster(
            num_nodes=3, fabric=UniformFabric(3, 2_000.0), seed=4
        ).run(10.0, 2_000)
        assert far.aggregate.mean == pytest.approx(near.aggregate.mean, rel=0.1)

    def test_pod_fabric_runs(self):
        cluster = Cluster(
            num_nodes=4,
            fabric=PodFabric(4, pod_size=2, intra_pod_ns=50, inter_pod_ns=800),
            seed=5,
        )
        result = cluster.run(per_node_mrps=8.0, requests_per_node=1_000)
        assert result.completed == 4_000

    def test_custom_workload(self):
        cluster = Cluster(
            num_nodes=2, workload=SyntheticWorkload("gev"), seed=6
        )
        result = cluster.run(per_node_mrps=5.0, requests_per_node=1_500)
        assert result.completed == 3_000

    def test_reproducible(self):
        first = Cluster(num_nodes=3, seed=7).run(10.0, 1_500)
        second = Cluster(num_nodes=3, seed=7).run(10.0, 1_500)
        assert first.p99_ns == second.p99_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=1)
        with pytest.raises(ValueError):
            Cluster(num_nodes=3, fabric=UniformFabric(4))
        cluster = Cluster(num_nodes=2)
        with pytest.raises(ValueError):
            cluster.run(per_node_mrps=0.0, requests_per_node=10)
        with pytest.raises(ValueError):
            cluster.run(per_node_mrps=1.0, requests_per_node=0)

    def test_flow_control_under_overload(self):
        # Per-pair slots bound in-flight load; overload stalls senders
        # but conserves every request.
        cluster = Cluster(num_nodes=2, seed=8)
        result = cluster.run(per_node_mrps=40.0, requests_per_node=3_000)
        assert result.completed == 6_000
        assert max(result.stall_fractions) > 0.0


class TestClusterInterference:
    def test_degraded_node_visible_in_per_node_summaries(self):
        from repro.arch import PeriodicStragglers
        from repro.balancing import Partitioned

        def degrade_node_zero(node_id):
            if node_id == 0:
                # All 16 cores of node 0 stall 4µs every 12µs.
                return PeriodicStragglers(
                    list(range(16)), period_ns=12_000.0, pause_ns=4_000.0
                )
            return None

        cluster = Cluster(
            num_nodes=3,
            scheme_factory=Partitioned,
            seed=9,
            interference_factory=degrade_node_zero,
        )
        result = cluster.run(per_node_mrps=18.0, requests_per_node=3_000)
        assert result.completed == 9_000
        # Node 0's mean latency stands out.
        assert result.per_node[0].mean > 1.5 * result.per_node[1].mean
        assert result.imbalance() > 1.5

    def test_rpcvalet_nodes_absorb_partial_degradation(self):
        from repro.arch import PeriodicStragglers

        def degrade_some_cores(node_id):
            if node_id == 0:
                return PeriodicStragglers([0, 1], 12_000.0, 4_000.0)
            return None

        cluster = Cluster(
            num_nodes=3, seed=9, interference_factory=degrade_some_cores
        )
        result = cluster.run(per_node_mrps=18.0, requests_per_node=3_000)
        # Two degraded cores out of 16: single-queue dispatch hides it.
        assert result.imbalance() < 1.25
