"""Span tracing and tail attribution: conservation, purity, determinism.

The contract under test, in rough order of importance:

1. **conservation** — every completed trace's phase components sum
   exactly to its recorded end-to-end latency, in legacy mode and in
   robust mode under retries, hedges, drops, and crashes;
2. **purity** — enabling tracing changes no simulated result (sampling
   is counter-based, never an RNG draw), and disabling it leaves every
   instrumented site a dead ``is not None`` branch;
3. **determinism** — merged trace buffers and attribution reports are
   bit-identical at any worker count, the same contract as telemetry;
4. the surrounding machinery behaves: DES-only engine gating, span
   export, the unified exporter, capture accounting in manifests.
"""

import json
import math

import pytest

from repro.cluster import Cluster
from repro.experiments.persistence import build_manifest
from repro.experiments.tails import _scenarios, run_tails
from repro.faults import FaultPlan, RetryConfig
from repro.rack import RackRouter
from repro.tracing import (
    PHASES,
    TraceConfig,
    Tracer,
    attribute_tails,
    attribution_to_dict,
    export_span_trace,
    merge_trace_buffers,
    render_exemplar,
)


def _run(seed=0, trace=TraceConfig(), faults=None, retry=None, policy="jsq2",
         mrps=24.0, requests=300, telemetry=False):
    cluster = Cluster(
        num_nodes=4,
        seed=seed,
        router=RackRouter(policy, "fresh"),
        faults=faults,
        retry=retry,
        telemetry=telemetry,
        trace=trace,
    )
    return cluster.run(per_node_mrps=mrps, requests_per_node=requests)


def _assert_conserved(buffer):
    checked = 0
    for trace in buffer.completed():
        phases = trace.phases()
        assert phases is not None
        assert tuple(phases) == PHASES
        assert math.isclose(
            sum(phases.values()), trace.e2e_ns, rel_tol=1e-9, abs_tol=1e-6
        )
        checked += 1
    assert checked > 0
    return checked


class TestConservation:
    def test_legacy_phases_sum_to_e2e(self):
        result = _run()
        assert _assert_conserved(result.spans) == 4 * 300

    def test_robust_phases_sum_to_e2e_under_faults(self):
        result = _run(
            faults=FaultPlan(drop_prob=0.05),
            retry=RetryConfig(
                timeout_ns=2_500.0, max_retries=3, backoff_ns=500.0,
                hedge_ns=1_500.0,
            ),
        )
        buffer = result.spans
        _assert_conserved(buffer)
        kinds = [s.kind for t in buffer.traces for s in t.attempts]
        # The fault mix must actually have exercised retries and hedges,
        # or this test proves nothing about multi-attempt conservation.
        assert kinds.count("retry") > 0
        assert kinds.count("hedge") > 0
        # Every trace resolves exactly once.
        assert sum(1 for t in buffer.completed()) + sum(
            1 for t in buffer.lost()
        ) == len(buffer)
        assert len(buffer) == result.offered == buffer.offered

    def test_crash_faults_land_in_buffer_timeline(self):
        result = _run(
            faults=FaultPlan(crash_rate_hz=20e3, mean_outage_ns=10_000.0),
            retry=RetryConfig(timeout_ns=5_000.0, max_retries=2,
                              backoff_ns=1_000.0),
            requests=400,
        )
        kinds = {kind for _, kind, _ in result.spans.faults}
        assert "crash" in kinds
        _assert_conserved(result.spans)

    def test_winner_reply_time_is_recorded_e2e(self):
        result = _run(retry=RetryConfig(timeout_ns=50_000.0, max_retries=1,
                                        backoff_ns=0.0))
        for trace in result.spans.completed():
            winner = trace.attempts[trace.winner]
            assert winner.status == "won"
            assert winner.t_reply == trace.t_end


class TestPurity:
    def test_tracing_does_not_perturb_the_simulation(self):
        plain = _run(trace=None)
        traced = _run()
        assert traced.aggregate.p99 == plain.aggregate.p99
        assert traced.aggregate.mean == plain.aggregate.mean
        assert traced.per_node_completed == plain.per_node_completed
        assert plain.spans is None

    def test_tracing_does_not_perturb_faulted_runs(self):
        kwargs = dict(
            faults=FaultPlan(drop_prob=0.04, dup_prob=0.01),
            retry=RetryConfig(timeout_ns=3_000.0, max_retries=2,
                              backoff_ns=1_000.0, hedge_ns=2_000.0),
        )
        plain = _run(trace=None, **kwargs)
        traced = _run(**kwargs)
        assert traced.e2e.p99 == plain.e2e.p99
        assert traced.lost == plain.lost
        assert traced.fault_stats.retries == plain.fault_stats.retries
        assert traced.fault_stats.hedges == plain.fault_stats.hedges

    def test_sample_period_counts_not_draws(self):
        result = _run(trace=TraceConfig(sample_period=7))
        buffer = result.spans
        assert buffer.offered == 4 * 300
        # ceil(300 / 7) sampled per client, deterministically.
        assert buffer.sampled == 4 * math.ceil(300 / 7)
        assert {t.index % 7 for t in buffer.traces} == {0}

    def test_max_traces_cap_counts_drops(self):
        result = _run(trace=TraceConfig(max_traces=10))
        buffer = result.spans
        assert len(buffer) == 10
        assert buffer.dropped == 4 * 300 - 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(sample_period=0)
        with pytest.raises(ValueError):
            TraceConfig(max_traces=0)


class TestDeterminism:
    def test_merge_is_concatenation_in_task_order(self):
        tracer_a, tracer_b = Tracer(TraceConfig()), Tracer(TraceConfig())
        a = tracer_a.maybe_trace(0, 1.0)
        b = tracer_b.maybe_trace(1, 2.0)
        merged = merge_trace_buffers([tracer_a.buffer, tracer_b.buffer])
        assert merged.traces == [a, b]
        assert merged.offered == 2

    def test_run_tails_identical_across_worker_counts(self):
        serial = run_tails(profile="smoke", seed=3, workers=1)
        fanned = run_tails(profile="smoke", seed=3, workers=2)
        assert serial.findings == fanned.findings
        for key in serial.data["scenarios"]:
            one = serial.data["scenarios"][key]
            two = fanned.data["scenarios"][key]
            assert one["report"] == two["report"]
            assert [t.e2e_ns for t in one["spans"].completed()] == [
                t.e2e_ns for t in two["spans"].completed()
            ]

    def test_router_decision_capture(self):
        result = _run()
        decided = [
            span.decision
            for trace in result.spans.traces
            for span in trace.attempts
            if span.decision is not None
        ]
        assert decided
        for decision, span in zip(
            decided,
            (s for t in result.spans.traces for s in t.attempts
             if s.decision is not None),
        ):
            assert decision["dst"] == span.dst
            assert decision["policy"] == "jsq2"
            # JSQ(2) on 4 nodes: self excluded, 3 candidates remain.
            assert decision["candidates"] == 3


class TestAttribution:
    def test_report_shape_and_cohort_nesting(self):
        report = attribute_tails(_run().spans)
        assert set(report.cohorts) == {"p50", "p99", "p999"}
        p50, p99 = report.cohort("p50"), report.cohort("p99")
        assert p99.threshold_ns >= p50.threshold_ns
        assert p99.count <= p50.count
        for cohort in report.cohorts.values():
            assert cohort.count > 0
            assert math.isclose(
                sum(cohort.phase_ns.values()), cohort.mean_e2e_ns,
                rel_tol=1e-9, abs_tol=1e-6,
            )
            assert cohort.exemplar is not None
            assert cohort.exemplar.e2e_ns >= cohort.threshold_ns

    def test_conservation_violation_raises(self):
        # The decomposition telescopes, so shifting any stamp moves two
        # adjacent phases in opposite directions and sums stay exact.
        # What *can* break it is a stamp read off a recycled message —
        # model that as a garbage server-side timestamp.
        buffer = _run(requests=50).spans
        trace = buffer.traces[0]
        trace.attempts[trace.winner].t_dispatch = float("nan")
        with pytest.raises(ValueError, match="conservation"):
            attribute_tails(buffer)

    def test_to_dict_round_trips_through_json(self):
        report = attribution_to_dict(attribute_tails(_run(requests=100).spans))
        clone = json.loads(json.dumps(report))
        assert clone == report
        assert clone["cohorts"]["p99"]["exemplar"]

    def test_render_exemplar_mentions_every_attempt(self):
        buffer = _run(
            faults=FaultPlan(drop_prob=0.10),
            retry=RetryConfig(timeout_ns=2_000.0, max_retries=3,
                              backoff_ns=500.0),
        ).spans
        trace = next(
            t for t in buffer.completed() if len(t.attempts) > 1
        )
        text = render_exemplar(trace)
        for position in range(len(trace.attempts)):
            assert f"attempt[{position}]" in text


class TestExportAndGating:
    def test_span_export_writes_valid_trace_events(self, tmp_path):
        result = _run(requests=60)
        path = tmp_path / "spans.json"
        count = export_span_trace(result.spans, path)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count > 0
        assert {e["ph"] for e in payload["traceEvents"]} <= {"X", "i", "M"}

    def test_unified_export_combines_spans_and_telemetry(self, tmp_path):
        from repro.telemetry import export_unified_trace

        result = _run(requests=60, telemetry=True)
        path = tmp_path / "unified.json"
        count = export_unified_trace(
            path, spans=result.spans, telemetry=result.telemetry
        )
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert any(e["ph"] == "C" for e in payload["traceEvents"])
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_tails_rejects_non_des_engines(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with pytest.raises(ValueError, match="des"):
            run_tails(profile="smoke", engine="fast")
        monkeypatch.setenv("REPRO_ENGINE", "fluid")
        with pytest.raises(ValueError, match="des"):
            run_tails(profile="smoke")

    def test_scenario_keys_are_unique(self):
        keys = [row[0] for row in _scenarios()]
        assert len(keys) == len(set(keys))

    def test_manifest_records_capture_accounting(self):
        manifest = build_manifest(
            "x", capture={"max_messages": 5, "dropped_messages": 2}
        )
        assert manifest["capture"] == {
            "max_messages": 5, "dropped_messages": 2,
        }
        assert "capture" not in build_manifest("x")
