"""Paper-preset distributions: the §5 constants must hold exactly."""

import numpy as np
import pytest

from repro.dists import (
    GEV_PARAMS_NS,
    HERD_MEAN_NS,
    MASSTREE_GET_MEAN_NS,
    MASSTREE_SCAN_FRACTION,
    MASSTREE_SCAN_RANGE_NS,
    SYNTHETIC_KINDS,
    herd,
    masstree,
    masstree_get,
    masstree_scan,
    synthetic,
)

RNG = lambda: np.random.default_rng(11)  # noqa: E731


class TestSyntheticCatalog:
    def test_all_kinds_have_600ns_mean(self):
        # §5: 300ns base + extra 300ns on average.
        for kind in SYNTHETIC_KINDS:
            assert synthetic(kind).mean == pytest.approx(600.0, rel=0.01), kind

    def test_samples_respect_base_floor(self):
        for kind in ("uniform", "exponential"):
            samples = synthetic(kind).sample_array(RNG(), 50_000)
            assert samples.min() >= 300.0, kind

    def test_gev_params_match_paper(self):
        # (363, 100, 0.65) cycles at 2GHz = (181.5, 50, 0.65) ns.
        assert GEV_PARAMS_NS == (181.5, 50.0, 0.65)
        dist = synthetic("gev")
        assert dist.inner.location == 181.5
        assert dist.inner.scale == 50.0
        assert dist.inner.shape == 0.65

    def test_variability_ordering(self):
        # Fig. 2's premise: Var(fixed) < Var(uniform) < Var(exp) < Var(gev).
        variances = [synthetic(kind).variance for kind in SYNTHETIC_KINDS]
        assert variances[0] < variances[1] < variances[2] < variances[3]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown synthetic kind"):
            synthetic("zipf")


class TestHerdCatalog:
    def test_mean_330ns(self):
        assert herd().mean == pytest.approx(HERD_MEAN_NS)

    def test_right_tail_shape(self):
        # Unimodal with mode below mean (Fig. 6b's histogram shape).
        samples = herd().sample_array(RNG(), 100_000)
        assert np.median(samples) < samples.mean()
        assert np.percentile(samples, 99) > 2 * samples.mean()


class TestMasstreeCatalog:
    def test_get_mean(self):
        assert masstree_get().mean == pytest.approx(MASSTREE_GET_MEAN_NS)

    def test_scan_range(self):
        dist = masstree_scan()
        low, high = MASSTREE_SCAN_RANGE_NS
        samples = dist.sample_array(RNG(), 10_000)
        assert samples.min() >= low
        assert samples.max() <= high
        assert dist.mean == pytest.approx((low + high) / 2)

    def test_mixture_structure(self):
        mix = masstree()
        assert len(mix.components) == 2
        np.testing.assert_allclose(
            mix.weights, [1 - MASSTREE_SCAN_FRACTION, MASSTREE_SCAN_FRACTION]
        )
        # Mean dominated by the rare long scans: ~2.1µs overall.
        assert mix.mean == pytest.approx(
            0.99 * MASSTREE_GET_MEAN_NS + 0.01 * 90_000.0, rel=0.01
        )

    def test_invalid_scan_fraction(self):
        with pytest.raises(ValueError):
            masstree(scan_fraction=0.0)
        with pytest.raises(ValueError):
            masstree(scan_fraction=1.0)
