"""The parallel sweep engine: seeding, worker mapping, degradation.

The load-bearing guarantee is that worker count is invisible in the
results — ``workers=4`` must reproduce ``workers=1`` bit for bit — so
parallelism can never be a source of run-to-run noise.
"""

import io
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_system, sweep_many
from repro.runner import (
    ENV_PROGRESS,
    ENV_WORKERS,
    MapOutcome,
    ProgressReporter,
    TaskFailure,
    map_points,
    progress_enabled,
    resolve_workers,
    set_progress,
    spawn_point_seeds,
    task_seed,
)

# -- seeding ------------------------------------------------------------------

_keys = st.tuples(
    st.text(max_size=12),  # experiment
    st.text(max_size=12),  # scheme
    st.integers(min_value=0, max_value=63),  # load index
    st.integers(min_value=0, max_value=2**31 - 1),  # experiment seed
)


def test_spawn_point_seeds_deterministic():
    first = spawn_point_seeds("fig7a", "d-RPCValet", 42, 8)
    second = spawn_point_seeds("fig7a", "d-RPCValet", 42, 8)
    assert first == second
    assert len(first) == 8
    assert len(set(first)) == 8


def test_spawn_point_seeds_prefix_stable():
    """Adding load points must not reseed the existing ones."""
    short = spawn_point_seeds("fig8", "1x16", 0, 3)
    long = spawn_point_seeds("fig8", "1x16", 0, 11)
    assert long[:3] == short


def test_task_seed_matches_spawn():
    seeds = spawn_point_seeds("fig7c", "16x1", 7, 5)
    assert [task_seed("fig7c", "16x1", i, 7) for i in range(5)] == seeds


def test_spawn_point_seeds_rejects_negative():
    with pytest.raises(ValueError):
        spawn_point_seeds("x", "y", 0, -1)
    with pytest.raises(ValueError):
        task_seed("x", "y", -1, 0)


@given(st.lists(_keys, min_size=2, max_size=24, unique=True))
@settings(max_examples=200, deadline=None)
def test_distinct_keys_never_share_a_seed(keys):
    seeds = [
        task_seed(experiment, scheme, index, seed)
        for experiment, scheme, index, seed in keys
    ]
    assert len(set(seeds)) == len(seeds)


@given(_keys)
@settings(max_examples=100, deadline=None)
def test_any_key_component_changes_the_seed(key):
    experiment, scheme, index, seed = key
    base = task_seed(experiment, scheme, index, seed)
    assert base != task_seed(experiment + "!", scheme, index, seed)
    assert base != task_seed(experiment, scheme + "!", index, seed)
    assert base != task_seed(experiment, scheme, index + 1, seed)
    assert base != task_seed(experiment, scheme, index, seed + 1)


# -- resolve_workers ----------------------------------------------------------

def test_resolve_workers_explicit():
    assert resolve_workers(4) == 4
    assert resolve_workers(1) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(-3) == 1


def test_resolve_workers_env(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS, "6")
    assert resolve_workers(None) == 6
    monkeypatch.setenv(ENV_WORKERS, "not-a-number")
    assert resolve_workers(None) == 1
    monkeypatch.delenv(ENV_WORKERS)
    assert resolve_workers(None) == 1


def test_explicit_workers_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS, "8")
    assert resolve_workers(2) == 2


# -- map_points ---------------------------------------------------------------

#: Recorded at import; under fork, workers inherit this value while
#: their own os.getpid() differs — letting a task fail only in workers.
_PARENT_PID = os.getpid()


def _double(task):
    return task * 2


def _fail_on_negative(task):
    if task < 0:
        raise ValueError(f"bad task {task}")
    return task * 2


def _fail_in_worker(task):
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("worker-only failure")
    return task * 2


def test_map_points_serial_order_and_results():
    outcome = map_points(_double, [3, 1, 2], workers=1)
    assert outcome.results == [6, 2, 4]
    assert outcome.failures == []
    assert outcome.ok
    assert outcome.findings() == []


def test_map_points_parallel_matches_serial():
    tasks = list(range(8))
    serial = map_points(_double, tasks, workers=1)
    parallel = map_points(_double, tasks, workers=4)
    assert parallel.results == serial.results == [t * 2 for t in tasks]
    assert parallel.ok


def test_map_points_serial_failure_is_fatal_without_retry():
    outcome = map_points(
        _fail_on_negative, [1, -1, 3], workers=1, labels=["a", "b", "c"]
    )
    assert outcome.results == [2, None, 6]
    assert not outcome.ok
    (failure,) = outcome.failures
    assert failure.label == "b"
    assert not failure.retried and failure.fatal
    assert "bad task -1" in failure.error
    assert "point dropped" in failure.describe()


def test_map_points_worker_failure_retried_serially():
    """A task that only fails inside a worker degrades gracefully."""
    outcome = map_points(_fail_in_worker, [5, 6], workers=2, labels=["x", "y"])
    if not outcome.failures:  # executor itself degraded to serial
        assert outcome.results == [10, 12]
        return
    assert outcome.results == [10, 12]
    assert outcome.ok  # retries succeeded, nothing fatal
    for failure in outcome.failures:
        assert failure.retried and not failure.fatal
        assert "serial retry succeeded" in failure.describe()


def test_map_points_worker_failure_fatal_after_retry():
    outcome = map_points(_fail_on_negative, [1, -1, 3], workers=2)
    assert outcome.results == [2, None, 6]
    assert not outcome.ok
    (failure,) = outcome.failures
    assert failure.fatal
    assert failure.label == "task[1]"


def test_map_outcome_findings_describe_failures():
    outcome = MapOutcome(
        results=[None],
        failures=[
            TaskFailure(label="p@1", error="Boom: x", retried=True, fatal=True)
        ],
    )
    assert not outcome.ok
    assert outcome.findings() == [
        "task p@1 failed after serial retry: Boom: x; point dropped"
    ]


# -- failure identity (which task failed, exactly) ----------------------------

def test_sweep_failure_names_scheme_load_index_and_seed(monkeypatch):
    """A dropped point's finding pinpoints the exact simulation to rerun."""
    import repro.core.system as core_system

    real_task = core_system.run_point_task

    def explode_at_second_load(task):
        system, load, *_rest = task
        if load == 20.0:
            raise RuntimeError("injected failure")
        return real_task(task)

    monkeypatch.setattr(core_system, "run_point_task", explode_at_second_load)
    failures = []
    sweeps = sweep_many(
        {"1x16": make_system("1x16", "synthetic-fixed", seed=3)},
        [8.0, 20.0],
        num_requests=200,
        workers=1,
        experiment="test-failure-id",
        failures=failures,
    )
    assert len(sweeps["1x16"].points) == 1  # the failed point is dropped
    (finding,) = failures
    assert "1x16[1]@20" in finding  # scheme + load index + load
    assert "(seed " in finding  # the exact per-task seed
    assert "RuntimeError: injected failure" in finding


# -- progress reporting -------------------------------------------------------

def test_progress_enabled_resolution(monkeypatch):
    monkeypatch.delenv(ENV_PROGRESS, raising=False)
    set_progress(None)
    assert not progress_enabled()
    assert progress_enabled(True)
    monkeypatch.setenv(ENV_PROGRESS, "1")
    assert progress_enabled()
    monkeypatch.setenv(ENV_PROGRESS, "0")
    assert not progress_enabled()
    set_progress(True)
    try:
        assert progress_enabled()
        assert not progress_enabled(False)  # explicit arg beats override
    finally:
        set_progress(None)


def test_progress_reporter_counts_and_eta():
    stream = io.StringIO()
    reporter = ProgressReporter(
        3, label="fig7a", stream=stream, min_interval_s=0.0
    )
    for name in ("a", "b", "c"):
        reporter.task_done(name)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("[fig7a] 1/3 (33%)")
    assert "ETA" in lines[0] and "a" in lines[0]
    assert lines[-1].startswith("[fig7a] 3/3 (100%)")
    assert "ETA 0.0s" in lines[-1]


def test_progress_reporter_eta_all_cache_hits_reports_unknown():
    # An all-hits prefix used to divide by a zero compute rate; the ETA
    # must come back as "unknown", never a crash or infinity.
    stream = io.StringIO()
    reporter = ProgressReporter(4, label="c", stream=stream, min_interval_s=0.0)
    reporter.task_done("a", wall_s=0.0, cached=True)
    assert reporter.eta_s(10.0) is None
    assert "ETA --" in stream.getvalue().splitlines()[0]
    # First computed task restores a finite extrapolation: 1 computed
    # in 4s -> rate 0.25/s -> 2 remaining -> 8s.
    reporter.task_done("b", wall_s=2.0)
    assert reporter.eta_s(4.0) == pytest.approx(8.0)


def test_progress_reporter_eta_zero_elapsed_stays_finite():
    reporter = ProgressReporter(
        3, stream=io.StringIO(), min_interval_s=0.0
    )
    reporter.task_done("a", wall_s=0.0)
    eta = reporter.eta_s(0.0)
    assert eta is not None and eta == pytest.approx(0.0, abs=1e-6)


def test_progress_reporter_eta_zero_remaining_is_zero():
    reporter = ProgressReporter(1, stream=io.StringIO(), min_interval_s=0.0)
    reporter.task_done("a", wall_s=1.0)
    assert reporter.eta_s(1.0) == 0.0


def test_progress_reporter_straggler_stats_quiet_on_zero_mean():
    reporter = ProgressReporter(3, stream=io.StringIO(), min_interval_s=0.0)
    reporter.task_done("a", wall_s=0.0)
    reporter.task_done("b", wall_s=0.0)
    assert reporter.straggler_stats() is None  # no inf/NaN ratio noise
    reporter.task_done("c", wall_s=3.0)
    assert "slowest 3.0s" in reporter.straggler_stats()


def test_progress_reporter_rate_limits_but_always_prints_final():
    stream = io.StringIO()
    reporter = ProgressReporter(
        5, label="x", stream=stream, min_interval_s=3600.0
    )
    for index in range(5):
        reporter.task_done(str(index))
    lines = stream.getvalue().splitlines()
    # First task prints, intermediates are throttled, final always prints.
    assert len(lines) == 2
    assert lines[0].startswith("[x] 1/5")
    assert lines[1].startswith("[x] 5/5")


def test_map_points_emits_progress_to_stderr(capsys):
    outcome = map_points(
        _double, [1, 2], workers=1, progress=True, progress_label="demo"
    )
    assert outcome.results == [2, 4]
    err = capsys.readouterr().err
    assert "[demo]" in err and "2/2 (100%)" in err


def test_map_points_silent_by_default(capsys):
    map_points(_double, [1, 2], workers=1)
    assert capsys.readouterr().err == ""


# -- end-to-end determinism ---------------------------------------------------

def _tiny_sweep(workers):
    systems = {
        scheme: make_system(scheme, "synthetic-fixed", seed=3)
        for scheme in ("1x16", "16x1")
    }
    return sweep_many(
        systems,
        [8.0, 20.0],
        num_requests=400,
        workers=workers,
        experiment="test-determinism",
    )


def test_sweep_results_identical_across_worker_counts():
    """workers=4 reproduces workers=1 exactly — the engine's contract."""
    serial = _tiny_sweep(1)
    parallel = _tiny_sweep(4)
    assert set(serial) == set(parallel) == {"1x16", "16x1"}
    for scheme, sweep in serial.items():
        other = parallel[scheme].points
        assert len(sweep.points) == len(other) == 2
        for mine, theirs in zip(sweep.points, other):
            assert mine.offered_load == theirs.offered_load
            assert mine.achieved_throughput == theirs.achieved_throughput
            assert mine.summary.mean == theirs.summary.mean
            assert mine.p99 == theirs.p99
