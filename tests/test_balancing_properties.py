"""Property-based tests on the dispatcher state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Chip, ChipConfig, make_send
from repro.balancing import Grouped, Partitioned, SingleQueue
from repro.sim import Environment, RngRegistry
from repro.workloads import MicrobenchCosts, MicrobenchProgram


def run_traffic(scheme, arrivals):
    """Drive a chip with (gap_ns, service_ns) arrival pairs."""
    env = Environment()
    chip = Chip(
        env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
        RngRegistry(0),
    )
    scheme.install(chip, RngRegistry(0).stream("dispatch"))

    max_outstanding = {"value": 0}
    for dispatcher in chip.dispatchers:
        original = dispatcher._dispatch_to

        def tracking(msg, core_id, _dispatcher=dispatcher, _original=original):
            _original(msg, core_id)
            peak = max(_dispatcher.outstanding.values())
            if peak > max_outstanding["value"]:
                max_outstanding["value"] = peak

        dispatcher._dispatch_to = tracking

    def feeder():
        for index, (gap, service) in enumerate(arrivals):
            yield env.timeout(gap)
            src = index % chip.config.num_remote_nodes
            slot = (index // chip.config.num_remote_nodes) % (
                chip.config.send_slots_per_node
            )
            chip.submit_message(
                make_send(chip.config, index, src, slot, 128, service)
            )

    env.process(feeder())
    env.run()
    return chip, max_outstanding["value"]


arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2_000.0),
        st.floats(min_value=0.0, max_value=20_000.0),
    ),
    min_size=1,
    max_size=60,
)


@given(arrival_lists)
@settings(max_examples=60, deadline=None)
def test_single_queue_conservation_and_threshold(arrivals):
    chip, peak_outstanding = run_traffic(SingleQueue(outstanding_limit=2), arrivals)
    # Conservation: every message completes exactly once.
    assert chip.stats.completed == len(arrivals)
    assert len(chip.recorder) == len(arrivals)
    # The §4.3 threshold is never exceeded.
    assert peak_outstanding <= 2
    # Everything drains.
    dispatcher = chip.dispatchers[0]
    assert len(dispatcher.shared_cq) == 0
    assert all(count == 0 for count in dispatcher.outstanding.values())
    # The receive buffer is fully released.
    assert chip.receive_buffer.occupied == 0


@given(arrival_lists)
@settings(max_examples=40, deadline=None)
def test_grouped_conservation(arrivals):
    chip, peak_outstanding = run_traffic(Grouped(4), arrivals)
    assert chip.stats.completed == len(arrivals)
    assert peak_outstanding <= 2
    assert sum(d.dispatched for d in chip.dispatchers) == len(arrivals)


@given(arrival_lists)
@settings(max_examples=40, deadline=None)
def test_partitioned_conservation(arrivals):
    chip, _peak = run_traffic(Partitioned(), arrivals)
    assert chip.stats.completed == len(arrivals)
    assert chip.receive_buffer.occupied == 0


@given(arrival_lists, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_latency_at_least_service(arrivals, limit):
    # End-to-end latency can never be below the RPC's own service time
    # plus the microbenchmark's fixed costs.
    chip, _peak = run_traffic(SingleQueue(outstanding_limit=limit), arrivals)
    costs = MicrobenchCosts.lean()
    latencies = chip.recorder.latencies()
    services = [service for _gap, service in arrivals]
    # Compare sorted sums: each latency >= its own service + overhead,
    # so min latency >= min service + fixed costs.
    assert latencies.min() >= min(services) + costs.total_ns
