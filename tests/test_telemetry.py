"""Telemetry layer: primitives, hub/sampler, instrumentation, merging.

The contract under test, in rough order of importance:

1. merged telemetry is bit-identical however tasks are distributed
   over workers (the whole point of mergeable primitives);
2. enabling telemetry never perturbs simulation results;
3. the disabled path stays zero-cost (no hub, no sampler, bare
   ``is not None`` guards);
4. the primitives themselves are correct (counts, quantile error
   bounds, envelope merging) and picklable.
"""

import io
import json
import math
import pickle

import numpy as np
import pytest

from repro.core import make_system, sweep_many, sweep_telemetry
from repro.queueing import QueueingSystem
from repro.dists import Fixed
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryHub,
    TelemetrySnapshot,
    TimeSeries,
    merge_histograms,
    merge_snapshots,
    series_csv,
    snapshot_jsonl_lines,
    write_snapshot_jsonl,
)


# -- Counter / Gauge ----------------------------------------------------------

def test_counter_inc_and_merge():
    a = Counter("x")
    a.inc()
    a.inc(4)
    b = Counter("x", value=10)
    assert a.merge(b) is a
    assert a.value == 15


def test_gauge_envelope_and_merge():
    a = Gauge("depth")
    for value in (3.0, 1.0, 7.0):
        a.set(value)
    assert (a.value, a.min, a.max, a.updates) == (7.0, 1.0, 7.0, 3)
    b = Gauge("depth")
    b.set(0.5)
    a.merge(b)
    assert a.value == 0.5  # last value comes from the later task
    assert a.min == 0.5 and a.max == 7.0 and a.updates == 4


def test_gauge_merge_with_no_updates_keeps_value():
    a = Gauge("depth")
    a.set(2.0)
    a.merge(Gauge("depth"))
    assert a.value == 2.0 and a.updates == 1


# -- Histogram ----------------------------------------------------------------

def test_histogram_exact_stats():
    h = Histogram("lat")
    values = [0.0, 1.0, 2.0, 4.0, 100.0]
    for v in values:
        h.record(v)
    assert h.count == len(values)
    assert h.total == sum(values)
    assert h.min == 0.0 and h.max == 100.0
    assert h.zero_count == 1
    assert h.mean == pytest.approx(np.mean(values))


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        Histogram().record(-1.0)
    with pytest.raises(ValueError):
        Histogram().record_many(np.array([1.0, -2.0]))


def test_histogram_quantile_relative_error_bound():
    """Quantiles are within one bucket ratio of the exact value."""
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=3.0, sigma=1.5, size=20_000)
    h = Histogram("lat")
    h.record_many(values)
    ratio = 2.0 ** (1.0 / h.buckets_per_octave)
    for q in (0.1, 0.5, 0.9, 0.99):
        exact = np.quantile(values, q)
        approx = h.quantile(q)
        assert exact / ratio <= approx <= exact * ratio


def test_histogram_bucket_edge_values_land_in_their_bucket():
    # Values on an exact bucket edge (8.0 = base**192 at 64
    # buckets/octave) used to floor one bucket low from float log
    # error, dragging quantiles a full bucket under the true value.
    h = Histogram("edge", buckets_per_octave=64)
    for value in (2.0, 4.0, 8.0, 16.0, 2.0 ** (1 / 64), 2.0 ** (193 / 64)):
        index = h._bucket_index(value)
        low, high = h.bucket_bounds(index)
        assert low <= value < high, value


def test_histogram_edge_quantile_not_a_bucket_low():
    h = Histogram("edge")
    for _ in range(100):
        h.record(8.0)
    ratio = 2.0 ** (1.0 / h.buckets_per_octave)
    for q in (0.5, 0.99):
        assert 8.0 <= h.quantile(q) <= 8.0 * ratio


def test_histogram_record_many_edge_snap_matches_scalar_path():
    values = np.array([8.0] * 8 + [5.0, 16.0, 2.0, 0.0, 2.0 ** (65 / 64)])
    scalar, vectorized = Histogram("a"), Histogram("b")
    for value in values:
        scalar.record(float(value))
    vectorized.record_many(values)
    assert scalar.counts == vectorized.counts
    assert scalar.zero_count == vectorized.zero_count


def test_histogram_quantile_edges():
    h = Histogram()
    assert math.isnan(h.quantile(0.5))
    h.record_many(np.zeros(10))
    assert h.quantile(0.99) == 0.0
    h2 = Histogram()
    h2.record(5.0)
    assert h2.quantile(0.0) == pytest.approx(5.0)
    assert h2.quantile(1.0) == pytest.approx(5.0)


def test_histogram_record_many_matches_scalar_path():
    values = np.array([0.0, 0.5, 1.0, 3.7, 3.7, 128.0])
    scalar, vector = Histogram("h"), Histogram("h")
    for v in values:
        scalar.record(float(v))
    vector.record_many(values)
    assert scalar == vector


def test_histogram_merge_order_independent():
    rng = np.random.default_rng(3)
    chunks = [rng.exponential(10.0, size=500) for _ in range(4)]
    parts = []
    for chunk in chunks:
        h = Histogram("lat")
        h.record_many(chunk)
        parts.append(h)
    forward = merge_histograms(parts)
    backward = merge_histograms(reversed(parts))
    combined = Histogram("lat")
    combined.record_many(np.concatenate(chunks))
    assert forward == backward == combined


def test_histogram_merge_rejects_mixed_resolution():
    with pytest.raises(ValueError):
        Histogram(buckets_per_octave=8).merge(Histogram(buckets_per_octave=4))


def test_primitives_pickle_roundtrip():
    h = Histogram("lat")
    h.record_many(np.array([1.0, 2.0, 0.0]))
    g = Gauge("g")
    g.set(3.0)
    s = TimeSeries("s")
    s.append(1.0, 2.0)
    for obj in (Counter("c", value=5), g, h, s):
        assert pickle.loads(pickle.dumps(obj)) == obj


# -- TelemetryHub / PeriodicSampler -------------------------------------------

def test_hub_get_or_create_identity():
    hub = TelemetryHub()
    assert hub.counter("a") is hub.counter("a")
    assert hub.gauge("b") is hub.gauge("b")
    assert hub.histogram("c") is hub.histogram("c")


def test_hub_duplicate_probe_rejected():
    hub = TelemetryHub(sample_interval=1.0)
    hub.add_probe("q", lambda: 0.0)
    with pytest.raises(ValueError):
        hub.add_probe("q", lambda: 1.0)


def test_hub_without_interval_or_probes_has_no_sampler():
    assert TelemetryHub().make_sampler() is None
    assert TelemetryHub(sample_interval=5.0).make_sampler() is None
    hub = TelemetryHub()
    hub.add_probe("q", lambda: 0.0)
    assert hub.make_sampler() is None


def test_periodic_sampler_ticks():
    hub = TelemetryHub(sample_interval=10.0)
    state = {"v": 0.0}
    series = hub.add_probe("v", lambda: state["v"])
    sampler = hub.make_sampler()
    assert sampler.next_at == 10.0
    state["v"] = 1.0
    sampler.advance(25.0)  # ticks at 10 and 20
    assert series.times == [10.0, 20.0]
    assert series.values == [1.0, 1.0]
    sampler.advance(25.0)  # no new tick due
    assert len(series) == 2
    assert sampler.next_at == 30.0


def test_sampler_driven_by_engine():
    from repro.sim import Environment

    env = Environment()

    def ticker(env):
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(ticker(env))
    hub = TelemetryHub(sample_interval=2.5)
    clock = hub.add_probe("clock", lambda: env.now)
    env.attach_sampler(hub.make_sampler())
    env.run()
    # Ticks at 2.5, 5.0, 7.5, 10.0 — nothing beyond the last event.
    assert clock.times == [2.5, 5.0, 7.5, 10.0]


# -- snapshots ----------------------------------------------------------------

def _snapshot_with(name, values):
    hub = TelemetryHub()
    hub.counter("n").inc(len(values))
    hub.histogram(name).record_many(np.asarray(values, dtype=float))
    return hub.snapshot()


def test_merge_snapshots_skips_none_and_is_fresh():
    a = _snapshot_with("lat", [1.0, 2.0])
    b = _snapshot_with("lat", [3.0])
    merged = merge_snapshots([None, a, None, b])
    assert merged.counters["n"].value == 3
    assert merged.histograms["lat"].count == 3
    # The merge must not alias the inputs.
    merged.histograms["lat"].record(9.0)
    assert a.histograms["lat"].count == 2
    assert merge_snapshots([None, None]) is None


def test_snapshot_pickle_roundtrip():
    snapshot = _snapshot_with("lat", [1.0, 5.0, 0.0])
    clone = pickle.loads(pickle.dumps(snapshot))
    assert clone.counters == snapshot.counters
    assert clone.histograms == snapshot.histograms


# -- exporters ----------------------------------------------------------------

def test_snapshot_jsonl_lines_schema():
    hub = TelemetryHub()
    hub.counter("c").inc(2)
    hub.gauge("g").set(1.5)
    hub.histogram("h").record_many(np.array([0.0, 4.0]))
    hub.series["s"] = s = TimeSeries("s")
    s.append(1.0, 2.0)
    lines = [json.loads(line) for line in snapshot_jsonl_lines(hub.snapshot())]
    kinds = [line["kind"] for line in lines]
    assert kinds == ["counter", "gauge", "histogram", "series"]
    histogram = lines[2]
    assert histogram["count"] == 2 and histogram["zero_count"] == 1
    assert histogram["sum"] == 4.0
    buffer = io.StringIO()
    assert write_snapshot_jsonl(hub.snapshot(), buffer) == 4
    assert buffer.getvalue().count("\n") == 4


def test_series_csv_long_format():
    snapshot = TelemetrySnapshot()
    series = TimeSeries("q")
    series.append(1.0, 3.0)
    series.append(2.0, 4.0)
    snapshot.series["q"] = series
    text = series_csv(snapshot)
    assert text.splitlines() == ["series,time,value", "q,1,3", "q,2,4"]


# -- arch integration ---------------------------------------------------------

def _run_point(telemetry, **kwargs):
    system = make_system("1x16", "synthetic-fixed", seed=11, telemetry=telemetry)
    return system.run_point(10.0, num_requests=2_000, **kwargs)


def test_instrumented_run_populates_telemetry():
    result = _run_point(True)
    snapshot = result.telemetry
    assert snapshot is not None
    assert snapshot.counters["arch.dispatches"].value == 2_000
    assert snapshot.histograms["arch.shared_cq_depth"].count == 2_000
    assert snapshot.histograms["arch.dispatch_outstanding"].count == 2_000
    assert any(len(s) > 0 for s in snapshot.series.values())
    assert result.point.extra["telemetry"] is snapshot


def test_telemetry_does_not_perturb_results():
    plain = _run_point(False)
    instrumented = _run_point(True)
    assert plain.telemetry is None
    assert instrumented.point.summary.mean == plain.point.summary.mean
    assert instrumented.p99 == plain.p99
    assert instrumented.point.achieved_throughput == plain.point.achieved_throughput


def test_disabled_run_attaches_nothing():
    system = make_system("1x16", "synthetic-fixed", seed=11)
    result = system.run_point(10.0, num_requests=500)
    assert result.telemetry is None
    assert "telemetry" not in result.point.extra


# -- max_messages cap (satellite) ---------------------------------------------

def test_max_messages_caps_capture_and_reports_drops():
    capped = _run_point(False, keep_messages=True, max_messages=100)
    assert len(capped.messages) == 100
    assert capped.dropped_messages == 1_900
    uncapped = _run_point(False, keep_messages=True)
    assert len(uncapped.messages) == 2_000
    assert uncapped.dropped_messages == 0
    # The cap keeps the newest records.
    assert [m.msg_id for m in capped.messages] == [
        m.msg_id for m in uncapped.messages[-100:]
    ]


# -- cross-worker bit-identity ------------------------------------------------

def _telemetry_sweep(workers):
    systems = {
        scheme: make_system(scheme, "synthetic-fixed", seed=5, telemetry=True)
        for scheme in ("1x16", "16x1")
    }
    return sweep_many(
        systems,
        [8.0, 16.0],
        num_requests=800,
        workers=workers,
        experiment="test-telemetry",
    )


def test_merged_telemetry_identical_across_worker_counts():
    """The tentpole contract: workers=2 merges bit-identically to serial."""
    serial = _telemetry_sweep(1)
    parallel = _telemetry_sweep(2)
    for scheme in ("1x16", "16x1"):
        a = sweep_telemetry(serial[scheme])
        b = sweep_telemetry(parallel[scheme])
        assert a.counters == b.counters
        assert a.histograms == b.histograms
        assert a.gauges == b.gauges
        assert sorted(a.series) == sorted(b.series)
        for name in a.series:
            assert a.series[name] == b.series[name]
        for mine, theirs in zip(serial[scheme].points, parallel[scheme].points):
            assert mine.summary.mean == theirs.summary.mean
            assert mine.p99 == theirs.p99


def test_sweep_telemetry_none_without_instrumentation():
    system = make_system("1x16", "synthetic-fixed", seed=5)
    sweep = system.sweep([8.0], num_requests=400)
    assert sweep_telemetry(sweep) is None


# -- queueing-layer telemetry -------------------------------------------------

def test_queueing_telemetry_depth_histograms():
    base = QueueingSystem(4, 4, Fixed(1.0), seed=9)
    plain = base.run(0.7, num_requests=4_000)
    instrumented = QueueingSystem(4, 4, Fixed(1.0), seed=9, telemetry=True).run(
        0.7, num_requests=4_000
    )
    snapshot = instrumented.extra["telemetry"]
    assert "telemetry" not in plain.extra
    # Telemetry must not change the simulated latencies.
    assert instrumented.summary.mean == plain.summary.mean
    assert instrumented.p99 == plain.p99
    combined = snapshot.histograms["queueing.depth"]
    assert combined.count == 4_000
    per_queue = [
        snapshot.histograms[f"queueing.depth[q{q}]"] for q in range(4)
    ]
    assert sum(h.count for h in per_queue) == combined.count
    assert merge_histograms(per_queue).counts == combined.counts
    for q in range(4):
        series = snapshot.series[f"queue_len[q{q}]"]
        assert len(series) > 0
        assert all(b >= a for a, b in zip(series.times, series.times[1:]))
