"""Dispatcher mechanics and balancing-scheme behaviour."""

import numpy as np
import pytest

from repro.arch import Chip, ChipConfig, make_send
from repro.balancing import (
    Grouped,
    LeastOutstanding,
    Partitioned,
    RandomAvailable,
    RoundRobinAvailable,
    SingleQueue,
    SoftwareSingleQueue,
    make_policy,
)
from repro.sim import Environment, RngRegistry
from repro.workloads import MicrobenchCosts, MicrobenchProgram


def build_chip(scheme, costs=None, config=None):
    env = Environment()
    chip = Chip(
        env,
        config or ChipConfig(),
        MicrobenchProgram(costs or MicrobenchCosts.lean()),
        RngRegistry(0),
    )
    scheme.install(chip, RngRegistry(0).stream("dispatch"))
    return chip


def burst(chip, count, service=600.0, spacing=0.0):
    """Submit ``count`` messages, optionally spaced in time."""
    def feeder():
        for msg_id in range(count):
            src = msg_id % chip.config.num_remote_nodes
            slot = (msg_id // chip.config.num_remote_nodes) % (
                chip.config.send_slots_per_node
            )
            msg = make_send(chip.config, msg_id, src, slot, 128, service)
            chip.submit_message(msg)
            if spacing:
                yield chip.env.timeout(spacing)
        if False:  # pragma: no cover - make this a generator
            yield

    if spacing:
        chip.env.process(feeder())
    else:
        for _ in feeder():
            pass
    return chip


class TestSelectionPolicies:
    def test_least_outstanding_prefers_idle(self):
        policy = LeastOutstanding()
        outstanding = {0: 1, 1: 0, 2: 1}
        rng = np.random.default_rng(0)
        assert policy.select([0, 1, 2], outstanding, 2, rng) == 1

    def test_least_outstanding_tie_breaks_by_dispatch_age(self):
        policy = LeastOutstanding()
        outstanding = {0: 1, 1: 1}
        last_dispatch = {0: 50.0, 1: 10.0}
        rng = np.random.default_rng(0)
        # Core 1 was dispatched to earlier → expected to free first.
        assert policy.select([0, 1], outstanding, 2, rng, last_dispatch) == 1

    def test_none_when_all_at_limit(self):
        policy = LeastOutstanding()
        outstanding = {0: 2, 1: 2}
        rng = np.random.default_rng(0)
        assert policy.select([0, 1], outstanding, 2, rng) is None

    def test_unbounded_limit_always_selects(self):
        policy = RoundRobinAvailable()
        outstanding = {0: 99}
        rng = np.random.default_rng(0)
        assert policy.select([0], outstanding, None, rng) == 0

    def test_random_available_only_picks_available(self):
        policy = RandomAvailable()
        outstanding = {0: 2, 1: 1, 2: 2}
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert policy.select([0, 1, 2], outstanding, 2, rng) == 1

    def test_make_policy(self):
        assert make_policy("least_outstanding").name == "least_outstanding"
        with pytest.raises(ValueError):
            make_policy("nope")

    def test_make_policy_fresh_state(self):
        assert make_policy("round_robin") is not make_policy("round_robin")


class TestDispatcherInvariants:
    def test_outstanding_never_exceeds_limit(self):
        chip = build_chip(SingleQueue(outstanding_limit=2))
        limit_violations = []
        dispatcher = chip.dispatchers[0]
        original = dispatcher._deliver

        def checked_deliver(msg, core_id):
            if dispatcher.outstanding[core_id] > 2:
                limit_violations.append(core_id)
            original(msg, core_id)

        dispatcher._deliver = checked_deliver
        burst(chip, 200)
        chip.env.run()
        assert not limit_violations
        assert chip.stats.completed == 200

    def test_private_cq_depth_bounded_by_limit(self):
        # The single-queue invariant: with threshold 2 (one processing +
        # one prefetched), a core's private CQ never holds more than 1.
        chip = build_chip(SingleQueue(outstanding_limit=2))
        burst(chip, 500)
        chip.env.run()
        assert chip.total_cqe_depth_high_water <= 1

    def test_partitioned_cq_grows_under_burst(self):
        chip = build_chip(Partitioned())
        burst(chip, 500)
        chip.env.run()
        assert chip.total_cqe_depth_high_water > 2

    def test_shared_cq_fifo_dispatch_order(self):
        chip = build_chip(SingleQueue())
        order = []
        dispatcher = chip.dispatchers[0]
        original = dispatcher._deliver

        def tracking_deliver(msg, core_id):
            order.append(msg.msg_id)
            original(msg, core_id)

        dispatcher._deliver = tracking_deliver
        burst(chip, 100)
        chip.env.run()
        assert order == sorted(order)

    def test_replenish_without_outstanding_rejected(self):
        chip = build_chip(SingleQueue())
        with pytest.raises(RuntimeError, match="no outstanding"):
            chip.dispatchers[0].on_replenish(0, None)

    def test_all_cores_used_under_load(self):
        chip = build_chip(SingleQueue())
        burst(chip, 400)
        chip.env.run()
        assert all(core.processed > 0 for core in chip.cores)

    def test_outstanding_drains_to_zero(self):
        chip = build_chip(SingleQueue())
        burst(chip, 64)
        chip.env.run()
        assert all(
            count == 0 for count in chip.dispatchers[0].outstanding.values()
        )
        assert len(chip.dispatchers[0].shared_cq) == 0

    def test_dispatch_serialization_advances_busy_until(self):
        chip = build_chip(SingleQueue())
        dispatcher = chip.dispatchers[0]
        burst(chip, 32)
        chip.env.run()
        # 32 dispatch decisions at dispatch_ns each were serialized.
        assert dispatcher.dispatched == 32
        assert dispatcher._busy_until > 0


class TestSoftwareScheme:
    def test_serialized_cost_is_handoff_plus_critical(self):
        scheme = SoftwareSingleQueue(handoff_ns=150.0, critical_ns=50.0)
        assert scheme.serialized_cost_ns == 200.0

    def test_core_overhead_installed(self):
        chip = build_chip(SoftwareSingleQueue(handoff_ns=150.0, critical_ns=50.0))
        assert chip.per_request_core_overhead_ns == 50.0

    def test_pull_semantics_limit_one(self):
        chip = build_chip(SoftwareSingleQueue())
        assert chip.dispatchers[0].outstanding_limit == 1

    def test_dequeue_ceiling_caps_throughput(self):
        # A burst of n requests cannot complete faster than n * 200ns.
        scheme = SoftwareSingleQueue(handoff_ns=150.0, critical_ns=50.0)
        chip = build_chip(scheme)
        n = 400
        burst(chip, n, service=10.0)  # tiny service: lock-bound
        chip.env.run()
        assert chip.env.now >= n * scheme.serialized_cost_ns

    def test_hardware_not_lock_bound(self):
        chip = build_chip(SingleQueue())
        n = 400
        burst(chip, n, service=10.0)
        chip.env.run()
        # 16 cores at ~230ns occupancy: far faster than 400 * 200ns.
        assert chip.env.now < n * 200.0

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            SoftwareSingleQueue(handoff_ns=-1.0)


class TestGroupedScheme:
    def test_labels(self):
        assert SingleQueue().label == "1xN"
        assert Grouped(4).label == "grouped-4"
        assert Partitioned().label == "Nx1"

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            Grouped(0)

    def test_invalid_outstanding(self):
        with pytest.raises(ValueError):
            SingleQueue(outstanding_limit=0)

    def test_invalid_spray(self):
        with pytest.raises(ValueError):
            Partitioned(spray="flow")

    def test_group_spray_covers_all_groups(self):
        chip = build_chip(Grouped(4))
        burst(chip, 400)
        chip.env.run()
        dispatched = [d.dispatched for d in chip.dispatchers]
        assert all(count > 0 for count in dispatched)
        assert sum(dispatched) == 400


class TestReplenishTriggeredDispatch:
    """§4.3: prefetch slots fill at replenish time, not arrival time."""

    def test_arrival_does_not_prefetch_to_busy_cores(self):
        # Saturate all 16 cores with one long RPC each, then submit one
        # more message: it must wait in the shared CQ, not be committed
        # to a busy core's prefetch slot.
        chip = build_chip(SingleQueue(outstanding_limit=2))
        burst(chip, 16, service=10_000.0)
        chip.env.run(until=5_000.0)
        dispatcher = chip.dispatchers[0]
        assert all(count == 1 for count in dispatcher.outstanding.values())
        extra = make_send(chip.config, 16, 20, 0, 128, 10_000.0)
        chip.submit_message(extra)
        chip.env.run(until=6_000.0)
        assert len(dispatcher.shared_cq) == 1  # held, not committed
        assert max(dispatcher.outstanding.values()) == 1
        chip.env.run()
        assert chip.stats.completed == 17

    def test_replenish_refills_the_replenishing_core(self):
        # 17 equal messages on 16 cores: when the first core finishes,
        # the waiting message goes to *that* core as its prefetch.
        chip = build_chip(SingleQueue(outstanding_limit=2))
        burst(chip, 17, service=1_000.0)
        chip.env.run()
        counts = [core.processed for core in chip.cores]
        assert sum(counts) == 17
        assert max(counts) == 2  # exactly one core ran two

    def test_arrival_dispatches_immediately_to_idle_core(self):
        chip = build_chip(SingleQueue(outstanding_limit=2))
        msg = make_send(chip.config, 0, 0, 0, 128, 500.0)
        chip.submit_message(msg)
        chip.env.run()
        # No replenish ever preceded this dispatch: idle-core path.
        assert msg.t_dispatch is not None
        assert msg.t_dispatch - msg.t_reassembled < 20.0

    def test_heavy_tail_victim_protection(self):
        # One core runs a 50µs RPC; a stream of 500ns RPCs keeps the
        # others busy. No short RPC may be stuck waiting behind the
        # long one for its full duration.
        chip = build_chip(SingleQueue(outstanding_limit=2))

        def feeder():
            long_msg = make_send(chip.config, 0, 0, 0, 128, 50_000.0)
            chip.submit_message(long_msg)
            for msg_id in range(1, 120):
                yield chip.env.timeout(400.0)
                msg = make_send(
                    chip.config, msg_id, msg_id % 199, 1, 128, 500.0
                )
                chip.submit_message(msg)

        chip.env.process(feeder())
        chip.env.run()
        latencies = sorted(chip.recorder.latencies())
        assert latencies[-1] > 50_000.0  # the long RPC itself
        assert latencies[-2] < 5_000.0  # no short RPC stuck behind it
