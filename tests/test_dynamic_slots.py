"""Dynamic (pooled) slot provisioning — the §4.2 future-work extension."""

import pytest

from repro import MicrobenchCosts, RpcValetSystem, SingleQueue
from repro.arch.buffers import DynamicSlotAllocator
from repro.workloads import HerdWorkload, SyntheticWorkload


class TestDynamicSlotAllocator:
    def test_allocate_release_cycle(self):
        pool = DynamicSlotAllocator(pool_size=2, max_msg_bytes=512)
        first = pool.allocate()
        second = pool.allocate()
        assert {first, second} == {0, 1}
        assert pool.allocate() is None
        assert pool.failed_allocations == 1
        pool.release(first)
        assert pool.allocate() == first
        assert pool.max_in_use == 2

    def test_double_release_rejected(self):
        pool = DynamicSlotAllocator(pool_size=2, max_msg_bytes=512)
        index = pool.allocate()
        pool.release(index)
        with pytest.raises(RuntimeError, match="released twice"):
            pool.release(index)

    def test_release_out_of_range(self):
        pool = DynamicSlotAllocator(pool_size=2, max_msg_bytes=512)
        with pytest.raises(ValueError):
            pool.release(5)

    def test_footprint(self):
        pool = DynamicSlotAllocator(pool_size=100, max_msg_bytes=2048)
        assert pool.footprint_bytes == (2048 + 64) * 100

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicSlotAllocator(0, 512)
        with pytest.raises(ValueError):
            DynamicSlotAllocator(10, 0)


class TestDynamicMode:
    def build(self, pool_size, workload=None):
        return RpcValetSystem(
            SingleQueue(),
            workload or HerdWorkload(),
            costs=MicrobenchCosts.lean(),
            seed=3,
            slot_policy="dynamic",
            pool_size=pool_size,
        )

    def test_matches_static_with_ample_pool(self):
        static = RpcValetSystem(
            SingleQueue(), HerdWorkload(), costs=MicrobenchCosts.lean(), seed=3
        ).run_point(20.0, 6_000)
        dynamic = self.build(pool_size=512).run_point(20.0, 6_000)
        assert dynamic.completed == static.completed == 6_000
        assert dynamic.point.achieved_throughput == pytest.approx(
            static.point.achieved_throughput, rel=0.02
        )
        assert dynamic.p99 == pytest.approx(static.p99, rel=0.1)

    def test_no_stalls_with_ample_pool(self):
        result = self.build(pool_size=512).run_point(20.0, 6_000)
        assert result.stall_fraction == 0.0

    def test_tiny_pool_stalls_but_conserves(self):
        result = self.build(pool_size=8).run_point(25.0, 6_000)
        assert result.stall_fraction > 0.0
        assert result.completed == 6_000  # deferred, never dropped

    def test_tiny_pool_caps_throughput(self):
        # 8 in-flight RPCs at ~550ns each over ~16 cores: well below
        # the offered 25 MRPS.
        result = self.build(pool_size=8).run_point(25.0, 6_000)
        assert result.point.achieved_throughput < 20.0

    def test_pool_cannot_exceed_receive_buffer(self):
        system = self.build(pool_size=10**7)
        with pytest.raises(ValueError, match="exceeds"):
            system.run_point(1.0, 100)

    def test_invalid_policy_rejected(self):
        system = RpcValetSystem(
            SingleQueue(),
            SyntheticWorkload("fixed"),
            seed=0,
            slot_policy="elastic",
        )
        with pytest.raises(ValueError, match="slot_policy"):
            system.run_point(1.0, 100)

    def test_reproducible(self):
        first = self.build(pool_size=64).run_point(20.0, 4_000)
        second = self.build(pool_size=64).run_point(20.0, 4_000)
        assert first.p99 == second.p99
