"""Population-driven workload subsystem (repro.popload) and CSV CDFs."""

import numpy as np
import pytest

from repro.core import make_system
from repro.dists import CdfDistribution, datamining, dist_from_file, websearch
from repro.popload import (
    MMPP,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NonhomogeneousPoisson,
    PiecewiseConstantRate,
    PopulationProcess,
    RecordedArrivals,
    StationaryPoisson,
    ZipfPopularity,
    load_arrival_trace,
    record_arrivals,
    save_arrival_trace,
    zipf_weights,
)

RNG = lambda seed=0: np.random.default_rng(seed)  # noqa: E731


class TestRateProfiles:
    def test_constant_integral(self):
        profile = ConstantRate(2e6)
        assert profile.rate(123.0) == 2e6
        assert profile.integral(1e9) == pytest.approx(2e6)
        assert profile.mean_rate(5e8) == pytest.approx(2e6)

    def test_diurnal_closed_form_matches_quadrature(self):
        profile = DiurnalRate(1e6, 0.6, period_ns=4e6, phase=0.2)
        ts = np.linspace(0.0, 1e7, 200_001)
        rates = np.array([profile.rate(t) for t in ts])
        numeric = np.trapz(rates, ts) / 1e9 if not hasattr(
            np, "trapezoid"
        ) else np.trapezoid(rates, ts) / 1e9
        assert profile.integral(1e7) == pytest.approx(numeric, rel=1e-6)
        assert profile.rate_max == pytest.approx(1.6e6)

    def test_diurnal_mean_over_full_period_is_nominal(self):
        profile = DiurnalRate(5e5, 0.9, period_ns=1e6)
        assert profile.mean_rate(3e6) == pytest.approx(5e5, rel=1e-12)

    def test_flash_crowd_shape_and_excess(self):
        profile = FlashCrowdRate(
            base_rate_rps=1e6,
            peak_rate_rps=3e6,
            start_ns=1e6,
            ramp_ns=2e5,
            hold_ns=1e6,
            decay_ns=4e5,
        )
        assert profile.rate(0.0) == 1e6
        assert profile.rate(1.1e6) == pytest.approx(2e6)  # mid-ramp
        assert profile.rate(1.5e6) == 3e6  # hold
        assert profile.rate(2.4e6) == pytest.approx(2e6)  # mid-decay
        assert profile.rate(5e6) == 1e6  # back to background
        # Total integral = background + the trapezoid's excess mass.
        expected = 1e6 / 1e9 * 1e7 + profile.excess_events()
        assert profile.integral(1e7) == pytest.approx(expected, rel=1e-12)
        assert profile.excess_events() == pytest.approx(
            2e6 * (1e6 + 0.5 * 6e5) / 1e9
        )

    def test_piecewise_rate_and_integral(self):
        profile = PiecewiseConstantRate([0.0, 1e6, 3e6], [1e6, 4e6, 2e6])
        assert profile.rate(0.0) == 1e6
        assert profile.rate(2e6) == 4e6
        assert profile.rate(1e9) == 2e6  # last rate holds forever
        assert profile.rate_max == 4e6
        expected = (1e6 * 1e6 + 4e6 * 2e6 + 2e6 * 1e6) / 1e9
        assert profile.integral(4e6) == pytest.approx(expected)

    def test_eager_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ConstantRate(0.0)
        with pytest.raises(ValueError, match="positive"):
            DiurnalRate(-1.0, 0.5, 1e6)
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            DiurnalRate(1e6, 1.0, 1e6)
        with pytest.raises(ValueError, match="adds load"):
            FlashCrowdRate(2e6, 1e6, 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            FlashCrowdRate(1e6, 2e6, -1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="start at 0"):
            PiecewiseConstantRate([1.0, 2.0], [1e6, 2e6])
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseConstantRate([0.0, 2e6, 1e6], [1e6, 2e6, 3e6])
        with pytest.raises(ValueError, match="non-negative"):
            PiecewiseConstantRate([0.0, 1.0], [1e6, -1.0])
        with pytest.raises(ValueError, match="no arrivals"):
            PiecewiseConstantRate([0.0, 1.0], [0.0, 0.0])


class TestArrivalProcesses:
    def test_stationary_matches_legacy_stream_bytewise(self):
        # The byte-identity contract: one vectorized exponential call.
        a, b = RNG(11), RNG(11)
        gaps = StationaryPoisson(1.2e6).sample_gaps(a, 4096)
        legacy = b.exponential(1e9 / 1.2e6, size=4096)
        assert gaps.tobytes() == legacy.tobytes()

    @pytest.mark.parametrize(
        "profile",
        [
            DiurnalRate(1e6, 0.6, period_ns=5e6),
            FlashCrowdRate(8e5, 2.4e6, 1e6, 2e5, 1e6, 2e5),
            PiecewiseConstantRate([0.0, 2e6], [5e5, 2e6]),
        ],
        ids=["diurnal", "flash", "piecewise"],
    )
    def test_event_count_conservation(self, profile):
        # N arrivals by time T ⇒ ∫λ ≈ N (Poisson counting property).
        n = 20_000
        times = NonhomogeneousPoisson(profile).sample_times(RNG(3), n)
        expected = profile.integral(float(times[-1]))
        assert n == pytest.approx(expected, rel=0.05)
        assert np.all(np.diff(times) > 0)

    def test_nonhomogeneous_rate_at_follows_profile(self):
        profile = DiurnalRate(1e6, 0.5, period_ns=4e6)
        process = NonhomogeneousPoisson(profile)
        assert process.rate_at(1e6) == pytest.approx(profile.rate(1e6))

    def test_mmpp_time_weighted_mean_rate(self):
        # Short dwells → many on/off cycles in the sample, so the
        # end-of-stream truncation bias stays below the tolerance.
        process = MMPP([2e6, 0.0], [3e5, 1e5])
        assert process.mean_rate_rps == pytest.approx(1.5e6)
        times = process.sample_times(RNG(5), 30_000)
        realized = times.size / float(times[-1]) * 1e9
        assert realized == pytest.approx(1.5e6, rel=0.05)

    def test_population_mean_rate_conserved(self):
        process = PopulationProcess(
            mean_users=500.0, per_user_rps=2e3, window_ns=5e4
        )
        assert process.mean_rate_rps == pytest.approx(1e6)
        times = process.sample_times(RNG(7), 30_000)
        realized = times.size / float(times[-1]) * 1e9
        assert realized == pytest.approx(1e6, rel=0.05)

    def test_population_follows_profile(self):
        # Rates realized in the first vs second half-period of a
        # diurnal profile must differ like the profile says.
        horizon = 1e7
        profile = DiurnalRate(1e6, 0.8, period_ns=horizon)
        process = PopulationProcess(
            mean_users=2000.0,
            per_user_rps=500.0,
            window_ns=horizon / 50,
            profile=profile,
        )
        times = process.sample_times(RNG(9), 10_000)
        half = horizon / 2
        first = int(np.sum(times[times <= horizon] <= half))
        second = int(np.sum((times > half) & (times <= horizon)))
        # sin is positive in the first half-period: ~3.4x the mass.
        assert first > 2.0 * second
        assert process.rate_at(horizon / 4) == pytest.approx(
            1.8e6, rel=1e-6
        )

    def test_determinism_same_seed_same_stream(self):
        for process in (
            StationaryPoisson(1e6),
            NonhomogeneousPoisson(DiurnalRate(1e6, 0.6, 5e6)),
            MMPP([5e5, 2e6], [1e6, 1e6]),
            PopulationProcess(100.0, 1e4, 1e5),
        ):
            one = process.sample_gaps(RNG(42), 2000)
            two = process.sample_gaps(RNG(42), 2000)
            assert one.tobytes() == two.tobytes(), process

    def test_eager_validation(self):
        with pytest.raises(ValueError, match="positive"):
            StationaryPoisson(0.0)
        with pytest.raises(TypeError, match="RateProfile"):
            NonhomogeneousPoisson(lambda t: 1.0)
        with pytest.raises(ValueError, match="at least 2 states"):
            MMPP([1e6], [1e6])
        with pytest.raises(ValueError, match="exactly one"):
            MMPP([1e6, 2e6], [1e6])
        with pytest.raises(ValueError, match="no arrivals"):
            MMPP([0.0, 0.0], [1e6, 1e6])
        with pytest.raises(ValueError, match="dwell"):
            MMPP([1e6, 2e6], [1e6, 0.0])
        with pytest.raises(ValueError, match="positive"):
            PopulationProcess(0.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="user_distribution"):
            PopulationProcess(10.0, 1.0, 1.0, user_distribution="cauchy")
        with pytest.raises(ValueError, match="user_sd"):
            PopulationProcess(10.0, 1.0, 1.0, user_distribution="normal")
        with pytest.raises(ValueError, match="non-negative"):
            StationaryPoisson(1e6).sample_gaps(RNG(), -1)


class TestThinningUnification:
    def test_queueing_reexport_is_the_popload_function(self):
        import repro.popload.arrivals as popload_arrivals
        import repro.queueing.nonstationary as queueing_nonstationary

        assert (
            queueing_nonstationary.nonhomogeneous_poisson
            is popload_arrivals.nonhomogeneous_poisson
        )

    def test_package_level_import_still_works(self):
        from repro.queueing import nonhomogeneous_poisson

        times = nonhomogeneous_poisson(RNG(1), lambda t: 5.0, 5.0, 1000.0)
        assert times.size > 0


class TestTraceRecordReplay:
    def test_round_trip_is_byte_exact(self, tmp_path):
        times = record_arrivals(
            NonhomogeneousPoisson(DiurnalRate(1e6, 0.6, 5e6)), RNG(13), 3000
        )
        path = tmp_path / "arrivals.trace"
        save_arrival_trace(path, times)
        loaded = load_arrival_trace(path)
        assert times.tobytes() == loaded.tobytes()

    def test_replay_consumes_no_rng(self):
        times = record_arrivals(StationaryPoisson(1e6), RNG(2), 100)
        replay = RecordedArrivals(times)
        rng = RNG(5)
        before = rng.bit_generator.state
        gaps = replay.sample_gaps(rng, 100)
        assert rng.bit_generator.state == before
        assert np.cumsum(gaps) == pytest.approx(times)

    def test_replay_through_the_simulator_is_deterministic(self):
        rate = 1e6
        times = record_arrivals(StationaryPoisson(rate), RNG(21), 1500)
        results = []
        for _ in range(2):
            system = make_system("1x16", "herd", seed=4)
            system.arrival_process = RecordedArrivals(times)
            results.append(system.run_point(1.0, num_requests=1500))
        assert results[0].point.summary.p99 == results[1].point.summary.p99
        assert results[0].completed == 1500

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_arrival_trace(tmp_path / "x", np.array([]))
        with pytest.raises(ValueError, match="sorted"):
            save_arrival_trace(tmp_path / "x", np.array([2.0, 1.0]))
        with pytest.raises(ValueError, match="finite"):
            save_arrival_trace(tmp_path / "x", np.array([1.0, np.inf]))
        empty = tmp_path / "empty.trace"
        empty.write_text("# repro-arrivals v1\n")
        with pytest.raises(ValueError, match="empty"):
            load_arrival_trace(empty)
        garbled = tmp_path / "bad.trace"
        garbled.write_text("0x1.8p+3\nnot-a-float\n")
        with pytest.raises(ValueError, match="bad.trace:2"):
            load_arrival_trace(garbled)
        with pytest.raises(ValueError, match="record a longer stream"):
            RecordedArrivals(np.array([1.0, 2.0])).sample_gaps(RNG(), 3)


class TestZipfSkew:
    def test_weights_match_analytic_mass(self):
        weights = zipf_weights(100, 1.0)
        harmonic = np.sum(1.0 / np.arange(1, 101))
        assert weights[0] == pytest.approx(1.0 / harmonic)
        assert weights.sum() == pytest.approx(1.0)

    def test_alpha_zero_is_uniform(self):
        assert zipf_weights(8, 0.0) == pytest.approx(np.full(8, 0.125))

    def test_sampled_frequencies_match_pmf(self):
        pop = ZipfPopularity(20, 1.2)
        draws = pop.sample_array(RNG(3), 40_000)
        observed = np.bincount(draws, minlength=20) / draws.size
        assert observed == pytest.approx(pop.pmf, abs=0.01)
        assert pop.head_mass(20) == pytest.approx(1.0)
        assert pop.head_mass(1) > 0.25

    def test_traffic_generator_source_skew_uses_zipf_weights(self):
        # source_skew routes through popload.zipf_weights now; the
        # stream must stay byte-identical to the historical inline code.
        system = make_system("1x16", "herd", seed=8)
        system.source_skew = 1.0
        result = system.run_point(1.0, num_requests=1200)
        assert result.completed == 1200

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError, match="non-negative"):
            zipf_weights(4, -0.5)
        with pytest.raises(ValueError, match=r"\[0, 20\]"):
            ZipfPopularity(20, 1.0).head_mass(21)


class TestCdfDistributions:
    def test_moments_match_samples(self):
        dist = CdfDistribution([1000, 5300, 20000], [0.15, 0.60, 1.00])
        samples = dist.sample_array(RNG(0), 200_000)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.02)
        assert samples.var() == pytest.approx(dist.variance, rel=0.05)
        assert samples.min() >= 1000.0 and samples.max() <= 20000.0

    def test_initial_point_mass(self):
        dist = CdfDistribution([500, 2000], [0.4, 1.0])
        samples = dist.sample_array(RNG(1), 50_000)
        assert np.mean(samples == 500.0) == pytest.approx(0.4, abs=0.01)

    def test_percentile(self):
        dist = CdfDistribution([0, 100], [0.5, 1.0])
        assert dist.percentile(50) == pytest.approx(0.0)
        assert dist.percentile(75) == pytest.approx(50.0)
        assert dist.percentile(100) == pytest.approx(100.0)

    def test_dist_from_file(self, tmp_path):
        csv = tmp_path / "svc.csv"
        csv.write_text("# demo\n1000, 0.5\n2000\t,\t1.0\n")
        dist = dist_from_file(csv, scale=2.0)
        assert dist.name == "svc"
        assert dist.percentile(100) == pytest.approx(4000.0)

    def test_packaged_curves(self):
        ws, dm = websearch(), datamining()
        assert ws.name == "websearch" and dm.name == "datamining"
        # datamining is far heavier-tailed than websearch.
        assert dm.percentile(99) / dm.percentile(50) > 100 * (
            ws.percentile(99) / ws.percentile(50)
        )
        for dist in (ws, dm):
            samples = dist.sample_array(RNG(2), 50_000)
            assert samples.mean() == pytest.approx(dist.mean, rel=0.1)

    def test_workload_presets_run_on_the_simulator(self):
        system = make_system("1x16", "websearch", seed=0)
        result = system.run_point(0.3, num_requests=800)
        assert result.completed == 800
        with pytest.raises(ValueError, match="unknown workload"):
            make_system("1x16", "web-search", seed=0)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            CdfDistribution([], [])
        with pytest.raises(ValueError, match="values but"):
            CdfDistribution([1.0], [0.5, 1.0])
        with pytest.raises(ValueError, match="non-negative"):
            CdfDistribution([-1.0, 2.0], [0.5, 1.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            CdfDistribution([2.0, 1.0], [0.5, 1.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            CdfDistribution([1.0, 2.0], [0.6, 0.6])
        with pytest.raises(ValueError, match="truncated"):
            CdfDistribution([1.0, 2.0], [0.3, 0.9])
        empty = tmp_path / "empty.csv"
        empty.write_text("# only comments\n")
        with pytest.raises(ValueError, match="empty"):
            dist_from_file(empty)
        bad = tmp_path / "bad.csv"
        bad.write_text("1000,0.5,extra\n")
        with pytest.raises(ValueError, match="bad.csv:1"):
            dist_from_file(bad)
        with pytest.raises(ValueError, match="scale"):
            dist_from_file(bad, scale=0.0)


class TestSystemIntegration:
    def test_constant_process_reproduces_legacy_run_bytewise(self):
        # The acceptance contract: a constant-rate config routed
        # through popload is indistinguishable from the legacy path.
        legacy = make_system("1x16", "herd", seed=3)
        res_legacy = legacy.run_point(1.0, num_requests=2000)
        routed = make_system("1x16", "herd", seed=3)
        routed.arrival_process = StationaryPoisson(1.0e6)
        res_routed = routed.run_point(1.0, num_requests=2000)
        assert (
            res_legacy.point.summary.p99 == res_routed.point.summary.p99
        )
        assert (
            res_legacy.point.achieved_throughput
            == res_routed.point.achieved_throughput
        )
        assert res_legacy.point.summary.mean == res_routed.point.summary.mean

    def test_rejects_non_process(self):
        system = make_system("1x16", "herd", seed=0)
        system.arrival_process = object()
        with pytest.raises(TypeError, match="ArrivalProcess"):
            system.run_point(1.0, num_requests=10)

    def test_diurnal_process_shifts_the_tail(self):
        n = 2500
        load = 1.4
        horizon = n / (load * 1e6) * 1e9
        flat = make_system("1x16", "herd", seed=6)
        res_flat = flat.run_point(load, num_requests=n)
        shaped = make_system("1x16", "herd", seed=6)
        shaped.arrival_process = NonhomogeneousPoisson(
            DiurnalRate(load * 1e6, 0.85, period_ns=horizon)
        )
        res_shaped = shaped.run_point(load, num_requests=n)
        assert res_shaped.point.summary.p99 != res_flat.point.summary.p99

    def test_offered_rate_telemetry_track(self):
        from repro.telemetry import probes

        n = 2000
        load = 1.0
        horizon = n / (load * 1e6) * 1e9
        system = make_system("1x16", "herd", seed=1, telemetry=True)
        system.arrival_process = NonhomogeneousPoisson(
            DiurnalRate(load * 1e6, 0.6, period_ns=horizon)
        )
        result = system.run_point(load, num_requests=n)
        series = result.telemetry.series[probes.OFFERED_RATE]
        values = np.asarray(series.values, dtype=float)
        assert values.max() > 1.3e6
        assert values.min() < 0.7e6
        # The sampler's last tick may precede the final few arrivals.
        generated = result.telemetry.series[probes.OFFERED_ARRIVALS]
        assert 0.9 * n <= max(generated.values) <= n

    def test_cluster_arrival_process(self):
        from repro.cluster import Cluster

        baseline = Cluster(num_nodes=4, seed=9).run(0.7, 1500)
        horizon = 1500 / 0.7e6 * 1e9
        shaped = Cluster(
            num_nodes=4,
            seed=9,
            arrival_process=NonhomogeneousPoisson(
                DiurnalRate(0.7e6, 0.6, period_ns=horizon)
            ),
        ).run(0.7, 1500)
        assert shaped.completed == baseline.completed
        assert shaped.aggregate.p99 != baseline.aggregate.p99
        with pytest.raises(TypeError, match="ArrivalProcess"):
            Cluster(num_nodes=2, seed=0, arrival_process=object())


class TestDiurnalExperiment:
    def test_make_arrival_process_kinds(self):
        from repro.experiments.diurnal import make_arrival_process

        horizon = 1e7
        constant = make_arrival_process("constant", 1e6, horizon)
        assert isinstance(constant, StationaryPoisson)
        diurnal = make_arrival_process("diurnal", 1e6, horizon)
        assert isinstance(diurnal, PopulationProcess)
        # Equal-average contract: the profile's mean over the run
        # horizon equals the nominal rate for every kind.
        assert diurnal.profile.mean_rate(horizon) == pytest.approx(1e6)
        flash = make_arrival_process("flash", 1e6, horizon)
        assert isinstance(flash, NonhomogeneousPoisson)
        assert flash.profile.mean_rate(horizon) == pytest.approx(1e6)
        with pytest.raises(ValueError, match="unknown profile kind"):
            make_arrival_process("weekly", 1e6, horizon)
        with pytest.raises(ValueError, match="positive"):
            make_arrival_process("constant", 0.0, horizon)
        with pytest.raises(ValueError, match="positive"):
            make_arrival_process("constant", 1e6, 0.0)

    def test_engine_resolution(self):
        from repro.experiments.diurnal import run_diurnal

        # The single-chip scheme surrogates are outside the fluid
        # tier's capability set: requesting it explicitly raises with
        # the supported alternatives instead of silently degrading.
        with pytest.raises(ValueError, match="does not support"):
            run_diurnal(profile="smoke", engine="fluid")

    def test_smoke_run_structure_and_worker_determinism(self):
        from repro.experiments.diurnal import PROFILE_KINDS, run_diurnal

        serial = run_diurnal(profile="smoke", seed=0, workers=1)
        parallel = run_diurnal(profile="smoke", seed=0, workers=2)
        assert serial.table() == parallel.table()
        # auto resolves to the fast tier for the single-chip sweep.
        assert serial.data["engine"] == "fast"
        capacity = serial.data["capacity"]
        for scheme in ("1x16", "16x1"):
            assert set(capacity[scheme]) == set(PROFILE_KINDS)
            # Measurable degradation under shaped load for BOTH
            # policies (the acceptance criterion).
            assert capacity[scheme]["diurnal"] < 0.8 * capacity[scheme][
                "constant"
            ]
            assert capacity[scheme]["flash"] < 0.8 * capacity[scheme][
                "constant"
            ]
        assert len(serial.data["sweeps"]) == 6
        assert serial.findings
