"""Fixed / Uniform / Exponential / GEV: moments, sampling, densities."""

import math

import numpy as np
import pytest

from .conftest import integrate
from repro.dists import Exponential, Fixed, GEV, Scaled, Shifted, Uniform

RNG = lambda: np.random.default_rng(1234)  # noqa: E731
N = 200_000


class TestFixed:
    def test_moments(self):
        dist = Fixed(600.0)
        assert dist.mean == 600.0
        assert dist.variance == 0.0
        assert dist.cv2 == 0.0

    def test_samples_constant(self):
        samples = Fixed(7.0).sample_array(RNG(), 100)
        assert np.all(samples == 7.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Fixed(-1.0)


class TestUniform:
    def test_moments(self):
        dist = Uniform(0.0, 600.0)
        assert dist.mean == 300.0
        assert dist.variance == pytest.approx(600.0**2 / 12.0)

    def test_sample_stats(self):
        dist = Uniform(100.0, 500.0)
        samples = dist.sample_array(RNG(), N)
        assert samples.min() >= 100.0
        assert samples.max() <= 500.0
        assert samples.mean() == pytest.approx(dist.mean, rel=0.01)

    def test_pdf_integrates_to_one(self):
        dist = Uniform(0.0, 10.0)
        xs = np.linspace(-5, 15, 4001)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, rel=1e-3)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 2.0)


class TestExponential:
    def test_moments(self):
        dist = Exponential(300.0)
        assert dist.mean == 300.0
        assert dist.variance == 300.0**2
        assert dist.cv2 == pytest.approx(1.0)

    def test_sample_stats(self):
        samples = Exponential(300.0).sample_array(RNG(), N)
        assert samples.mean() == pytest.approx(300.0, rel=0.02)
        assert samples.std() == pytest.approx(300.0, rel=0.02)

    def test_pdf(self):
        dist = Exponential(2.0)
        assert dist.pdf(np.array([0.0]))[0] == pytest.approx(0.5)
        assert dist.pdf(np.array([-1.0]))[0] == 0.0

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestGEV:
    """The paper's GEV(363, 100, 0.65) in cycles = (181.5, 50, 0.65) ns."""

    def paper_dist(self):
        return GEV(location=181.5, scale=50.0, shape=0.65)

    def test_paper_mean_is_300ns(self):
        # §5: "result in a mean of 600 cycles (i.e., 300ns at 2GHz)".
        assert self.paper_dist().mean == pytest.approx(300.0, rel=0.01)

    def test_variance_infinite_for_heavy_shape(self):
        assert math.isinf(self.paper_dist().variance)

    def test_variance_finite_for_light_shape(self):
        dist = GEV(location=100.0, scale=10.0, shape=0.2)
        assert math.isfinite(dist.variance)
        assert dist.variance > 0

    def test_sample_mean_converges(self):
        # Heavy tail: generous tolerance, huge sample.
        samples = self.paper_dist().sample_array(RNG(), 2_000_000)
        assert samples.mean() == pytest.approx(300.0, rel=0.05)

    def test_support_lower_bound(self):
        dist = self.paper_dist()
        samples = dist.sample_array(RNG(), N)
        assert samples.min() >= dist.support_min
        assert dist.support_min == pytest.approx(181.5 - 50.0 / 0.65)

    def test_quantile_cdf_roundtrip(self):
        dist = self.paper_dist()
        for u in (0.01, 0.5, 0.9, 0.999):
            x = dist._quantile(np.array([u]))
            assert dist.cdf(x)[0] == pytest.approx(u, rel=1e-9)

    def test_pdf_integrates_to_one(self):
        dist = self.paper_dist()
        xs = np.linspace(dist.support_min, 50_000.0, 400_000)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, abs=0.01)

    def test_pdf_zero_outside_support(self):
        dist = self.paper_dist()
        assert dist.pdf(np.array([dist.support_min - 1.0]))[0] == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GEV(0.0, -1.0, 0.5)
        with pytest.raises(ValueError):
            GEV(0.0, 1.0, 0.0)


class TestTransforms:
    def test_shifted_moments_and_samples(self):
        dist = Shifted(Exponential(300.0), 300.0)
        assert dist.mean == 600.0
        assert dist.variance == 300.0**2
        samples = dist.sample_array(RNG(), N)
        assert samples.min() >= 300.0
        assert samples.mean() == pytest.approx(600.0, rel=0.02)

    def test_shifted_pdf_is_translated(self):
        inner = Exponential(1.0)
        dist = Shifted(inner, 5.0)
        xs = np.array([5.0, 6.0])
        np.testing.assert_allclose(dist.pdf(xs), inner.pdf(xs - 5.0))

    def test_scaled_moments(self):
        dist = Scaled(Uniform(0.0, 2.0), 3.0)
        assert dist.mean == pytest.approx(3.0)
        assert dist.variance == pytest.approx(9.0 * 4.0 / 12.0)

    def test_scaled_pdf_integrates_to_one(self):
        dist = Scaled(Exponential(1.0), 10.0)
        xs = np.linspace(0, 200, 20001)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, rel=1e-3)

    def test_invalid_transform_params(self):
        with pytest.raises(ValueError):
            Shifted(Exponential(1.0), -1.0)
        with pytest.raises(ValueError):
            Scaled(Exponential(1.0), 0.0)
