"""End-to-end message walk-through on the simulated chip."""

import pytest

from repro.arch import Chip, ChipConfig, make_replenish, make_send
from repro.balancing import Grouped, Partitioned, SingleQueue
from repro.sim import Environment, RngRegistry
from repro.workloads import MicrobenchCosts, MicrobenchProgram


def build_chip(scheme=None, config=None, costs=None):
    env = Environment()
    config = config or ChipConfig()
    costs = costs or MicrobenchCosts.lean()
    chip = Chip(env, config, MicrobenchProgram(costs), RngRegistry(0))
    scheme = scheme or SingleQueue()
    scheme.install(chip, RngRegistry(0).stream("dispatch"))
    return chip


def submit(chip, msg_id=0, src_node=0, slot=0, size=128, service=600.0, label="rpc"):
    msg = make_send(
        chip.config, msg_id, src_node, slot, size, service, label=label
    )
    chip.submit_message(msg)
    return msg


class TestSingleMessage:
    def test_timestamps_are_ordered(self):
        chip = build_chip()
        msg = submit(chip)
        chip.env.run()
        assert msg.t_arrival == 0.0
        assert msg.t_arrival < msg.t_reassembled
        assert msg.t_reassembled <= msg.t_dispatch
        assert msg.t_dispatch < msg.t_start
        assert msg.t_start < msg.t_replenish

    def test_latency_decomposition(self):
        costs = MicrobenchCosts.lean()
        chip = build_chip(costs=costs)
        msg = submit(chip, service=600.0)
        chip.env.run()
        # Core occupancy: pre + service + post, no queueing (idle chip).
        occupancy = msg.t_replenish - msg.t_start + costs.pre_ns
        assert occupancy == pytest.approx(costs.total_ns + 600.0)
        # End-to-end latency also includes NI work but no queueing;
        # the NI portion must be tens of ns, not µs.
        ni_portion = msg.latency_ns - occupancy
        assert 0 < ni_portion < 100.0

    def test_packetization(self):
        chip = build_chip()
        msg = submit(chip, size=128)
        assert msg.num_packets == 2
        chip.env.run()

    def test_core_recorded_and_stats(self):
        chip = build_chip()
        msg = submit(chip)
        chip.env.run()
        assert 0 <= msg.core_id < 16
        assert chip.stats.submitted == 1
        assert chip.stats.completed == 1
        assert chip.cores[msg.core_id].processed == 1

    def test_latency_recorder_collects(self):
        chip = build_chip()
        submit(chip, label="get")
        chip.env.run()
        assert len(chip.recorder) == 1
        assert chip.recorder.labels == ["get"]

    def test_receive_slot_released(self):
        chip = build_chip()
        submit(chip)
        chip.env.run()
        assert chip.receive_buffer.occupied == 0
        assert chip.receive_buffer.max_occupied == 1

    def test_replenish_frees_sender_slot(self):
        chip = build_chip()
        released = []
        chip.on_slot_replenished = lambda message: released.append(
            (chip.env.now, message.src_node, message.slot)
        )
        msg = submit(chip, src_node=7, slot=3)
        chip.env.run()
        assert len(released) == 1
        when, src, slot = released[0]
        assert (src, slot) == (7, 3)
        # Slot credit arrives one wire latency after the replenish.
        assert when == pytest.approx(
            msg.t_replenish + chip.config.wire_latency_ns
        )

    def test_make_replenish_mirrors_message(self):
        chip = build_chip()
        msg = submit(chip, src_node=5, slot=2)
        chip.env.run()
        replenish = make_replenish(msg)
        assert replenish.src_node == 5
        assert replenish.slot == 2
        assert replenish.core_id == msg.core_id


class TestRendezvous:
    def test_oversized_message_uses_rendezvous(self):
        chip = build_chip()
        msg = submit(chip, size=8192)  # > max_msg_bytes (2048)
        chip.env.run()
        assert msg.rendezvous
        assert msg.num_packets == 1  # descriptor only
        assert chip.stats.rendezvous_messages == 1
        # The fetch adds at least one wire round trip to the latency.
        assert msg.extra_pre_ns >= 2 * chip.config.wire_latency_ns

    def test_regular_message_is_not_rendezvous(self):
        chip = build_chip()
        msg = submit(chip, size=2048)
        chip.env.run()
        assert not msg.rendezvous
        assert chip.stats.rendezvous_messages == 0

    def test_rendezvous_latency_exceeds_regular(self):
        regular_chip = build_chip()
        regular = submit(regular_chip, size=2048)
        regular_chip.env.run()
        rendezvous_chip = build_chip()
        rendezvous = submit(rendezvous_chip, size=8192)
        rendezvous_chip.env.run()
        assert rendezvous.latency_ns > regular.latency_ns


class TestOneSided:
    def test_onesided_never_reaches_dispatcher(self):
        # §3.3: one-sided ops produce no CPU notification.
        chip = build_chip()
        chip.submit_onesided(size_bytes=512)
        chip.env.run()
        assert chip.stats.onesided_ops == 1
        assert chip.stats.completed == 0
        assert all(d.dispatched == 0 for d in chip.dispatchers)
        assert sum(b.onesided_handled for b in chip.backends) == 1


class TestSchemes:
    def test_no_scheme_rejected(self):
        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        with pytest.raises(RuntimeError, match="no balancing scheme"):
            submit(chip)

    def test_single_queue_one_dispatcher(self):
        chip = build_chip(SingleQueue())
        assert len(chip.dispatchers) == 1
        assert chip.dispatchers[0].core_ids == list(range(16))

    def test_grouped_four_dispatchers(self):
        chip = build_chip(Grouped(4))
        assert len(chip.dispatchers) == 4
        assert chip.dispatchers[1].core_ids == [4, 5, 6, 7]

    def test_partitioned_sixteen(self):
        chip = build_chip(Partitioned())
        assert len(chip.dispatchers) == 16
        assert all(len(d.core_ids) == 1 for d in chip.dispatchers)
        assert all(d.outstanding_limit is None for d in chip.dispatchers)

    def test_grouped_indivisible_rejected(self):
        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        with pytest.raises(ValueError, match="divisible"):
            Grouped(3).install(chip, RngRegistry(0).stream("d"))

    def test_partitioned_source_spray_is_static(self):
        chip = build_chip(Partitioned(spray="source"))
        groups = set()
        for msg_id in range(5):
            msg = submit(chip, msg_id=msg_id, src_node=9, slot=msg_id % 2)
            groups.add(msg.group_id)
            chip.env.run()
        assert len(groups) == 1  # same source → same core, always
