"""Interference injection (§3.2): stragglers and random stalls."""

import numpy as np
import pytest

from repro import MicrobenchCosts, RpcValetSystem, SingleQueue
from repro.arch import PeriodicStragglers, RandomStalls
from repro.balancing import Partitioned
from repro.workloads import HerdWorkload


class TestModels:
    def test_periodic_straggler_schedule(self):
        model = PeriodicStragglers([2], period_ns=100.0, pause_ns=50.0)
        rng = np.random.default_rng(0)
        # Unaffected core: never pauses.
        assert model.pause_ns(0, 1_000.0, rng) == 0.0
        # Affected core: pause once the period elapsed, then rearm.
        assert model.pause_ns(2, 50.0, rng) == 0.0
        assert model.pause_ns(2, 150.0, rng) == 50.0
        assert model.pause_ns(2, 200.0, rng) == 0.0  # rearmed to 250
        assert model.pause_ns(2, 260.0, rng) == 50.0

    def test_degradation_fraction(self):
        model = PeriodicStragglers([0], period_ns=12_000.0, pause_ns=4_000.0)
        assert model.degradation == pytest.approx(0.25)

    def test_random_stalls_statistics(self):
        model = RandomStalls(probability=0.5, mean_pause_ns=100.0)
        rng = np.random.default_rng(1)
        pauses = [model.pause_ns(0, 0.0, rng) for _ in range(20_000)]
        hit_fraction = sum(1 for p in pauses if p > 0) / len(pauses)
        assert hit_fraction == pytest.approx(0.5, abs=0.02)
        hits = [p for p in pauses if p > 0]
        assert np.mean(hits) == pytest.approx(100.0, rel=0.05)

    def test_random_stalls_core_filter(self):
        model = RandomStalls(probability=1.0, mean_pause_ns=10.0, core_ids=[1])
        rng = np.random.default_rng(2)
        assert model.pause_ns(0, 0.0, rng) == 0.0
        assert model.pause_ns(1, 0.0, rng) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicStragglers([], 100.0, 10.0)
        with pytest.raises(ValueError):
            PeriodicStragglers([0], 0.0, 10.0)
        with pytest.raises(ValueError):
            RandomStalls(0.0, 10.0)
        with pytest.raises(ValueError):
            RandomStalls(0.5, 0.0)


class TestSchemeResilience:
    """§3.2: dispatch must route around disrupted cores."""

    def run(self, scheme, interference):
        system = RpcValetSystem(
            scheme,
            HerdWorkload(),
            costs=MicrobenchCosts.lean(),
            seed=4,
            interference=interference,
        )
        return system.run_point(offered_mrps=20.0, num_requests=8_000)

    def test_rpcvalet_absorbs_straggler(self):
        healthy = self.run(SingleQueue(), None)
        degraded = self.run(
            SingleQueue(), PeriodicStragglers([3], 12_000.0, 4_000.0)
        )
        # Tail moves by at most ~30%; throughput unaffected.
        assert degraded.p99 < 1.3 * healthy.p99
        assert degraded.point.achieved_throughput == pytest.approx(
            healthy.point.achieved_throughput, rel=0.02
        )

    def test_partitioned_suffers_from_straggler(self):
        healthy = self.run(Partitioned(), None)
        degraded = self.run(
            Partitioned(), PeriodicStragglers([3], 12_000.0, 4_000.0)
        )
        assert degraded.p99 > 2 * healthy.p99

    def test_straggler_hurts_partitioned_more_than_rpcvalet(self):
        interference = PeriodicStragglers([3], 12_000.0, 4_000.0)
        partitioned = self.run(Partitioned(), interference)
        single = self.run(
            SingleQueue(), PeriodicStragglers([3], 12_000.0, 4_000.0)
        )
        assert partitioned.p99 > 4 * single.p99

    def test_interference_is_reproducible(self):
        first = self.run(SingleQueue(), RandomStalls(0.02, 2_000.0))
        second = self.run(SingleQueue(), RandomStalls(0.02, 2_000.0))
        assert first.p99 == second.p99
