"""Store, PriorityStore, and Resource semantics."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        results = []

        def consumer():
            for _ in range(3):
                results.append((yield store.get()))

        for item in ("a", "b", "c"):
            store.put(item)
        env.process(consumer())
        env.run()
        assert results == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (env.now, item)

        def producer():
            yield env.timeout(5)
            yield store.put("late")

        process = env.process(consumer())
        env.process(producer())
        assert env.run(process) == (5.0, "late")

    def test_capacity_blocks_putters(self, env):
        store = Store(env, capacity=1)
        progress = []

        def producer():
            yield store.put("first")
            progress.append(("first stored", env.now))
            yield store.put("second")
            progress.append(("second stored", env.now))

        def consumer():
            yield env.timeout(10)
            item = yield store.get()
            return item

        env.process(producer())
        env.process(consumer())
        env.run()
        assert progress == [("first stored", 0.0), ("second stored", 10.0)]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len_and_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_try_get(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        env.run()
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_try_get_with_blocked_getters_raises(self, env):
        store = Store(env)

        def consumer():
            yield store.get()

        env.process(consumer())
        env.run()
        with pytest.raises(RuntimeError):
            store.try_get()

    def test_waiting_counts(self, env):
        store = Store(env, capacity=1)
        store.put("a")
        store.put("b")  # blocked
        store.get()

        def noop():
            yield env.timeout(0)

        env.process(noop())
        env.run()
        # "a" got taken by the getter, then "b" moved in.
        assert store.waiting_putters == 0
        assert store.waiting_getters == 0
        assert store.items == ["b"]


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        results = []

        def consumer():
            for _ in range(3):
                results.append((yield store.get()))

        for item in (5, 1, 3):
            store.put(item)
        env.process(consumer())
        env.run()
        assert results == [1, 3, 5]

    def test_items_sorted(self, env):
        store = PriorityStore(env)
        for item in (2, 9, 4):
            store.put(item)
        env.run()
        assert store.items == [2, 4, 9]
        assert len(store) == 3


class TestResource:
    def test_mutual_exclusion_and_fifo(self, env):
        resource = Resource(env, capacity=1)
        log = []

        def worker(name, hold):
            with resource.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(hold)

        env.process(worker("a", 4))
        env.process(worker("b", 2))
        env.process(worker("c", 1))
        env.run()
        assert log == [(0.0, "a"), (4.0, "b"), (6.0, "c")]

    def test_capacity_two_allows_two_holders(self, env):
        resource = Resource(env, capacity=2)
        log = []

        def worker(name):
            with resource.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(3)

        for name in ("a", "b", "c"):
            env.process(worker(name))
        env.run()
        assert log == [(0.0, "a"), (0.0, "b"), (3.0, "c")]

    def test_count_and_queue_length(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.count == 1
        assert resource.queue_length == 1
        resource.release(first)
        assert resource.count == 1  # second was granted
        assert resource.queue_length == 0
        resource.release(second)
        assert resource.count == 0

    def test_cancel_pending_request(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        pending = resource.request()
        resource.release(pending)  # cancel while waiting
        assert resource.queue_length == 0
        resource.release(held)
        assert resource.count == 0

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
