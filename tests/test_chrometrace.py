"""Trace Event Format exporter: schema validity, time ordering, units.

The output must load in chrome://tracing / Perfetto, which means every
event needs the documented required keys, timestamps must be in
microseconds, and each track's events should appear in time order.
"""

import io
import json

import pytest

from repro.arch.packets import SendMessage
from repro.metrics import (
    chrome_trace_events,
    counter_track_events,
    export_chrome_trace,
    telemetry_counter_events,
)
from repro.telemetry import TelemetrySnapshot, TimeSeries

#: Required keys per the Trace Event Format spec, by phase.
_COMPLETE_KEYS = {"name", "ph", "ts", "dur", "pid", "tid"}
_COUNTER_KEYS = {"name", "ph", "ts", "pid", "args"}


def _message(msg_id, t_arrival, stage_ns=100.0, core_id=0):
    msg = SendMessage(
        msg_id=msg_id,
        src_node=1,
        slot=0,
        size_bytes=128,
        num_packets=2,
        service_ns=stage_ns,
    )
    msg.t_arrival = t_arrival
    msg.t_reassembled = t_arrival + stage_ns
    msg.t_dispatch = t_arrival + 2 * stage_ns
    msg.t_start = t_arrival + 2 * stage_ns
    msg.t_replenish = t_arrival + 3 * stage_ns
    msg.backend_id = 0
    msg.group_id = 0
    msg.core_id = core_id
    return msg


def _messages(count=4):
    return [
        _message(i, t_arrival=1_000.0 * i, core_id=i % 2) for i in range(count)
    ]


# -- schema validity ----------------------------------------------------------

def test_complete_events_have_required_keys():
    for event in chrome_trace_events(_messages()):
        assert _COMPLETE_KEYS <= set(event)
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float)
        assert event["dur"] >= 0.0


def test_counter_events_have_required_keys():
    events = counter_track_events("q", [0.0, 10.0], [1.0, 2.0])
    for event in events:
        assert set(event) == _COUNTER_KEYS
        assert event["ph"] == "C"
        assert "value" in event["args"]


def test_counter_track_rejects_length_mismatch():
    with pytest.raises(ValueError):
        counter_track_events("q", [0.0, 1.0], [1.0])


def test_export_is_valid_json_with_trace_events_envelope():
    buffer = io.StringIO()
    count = export_chrome_trace(_messages(), buffer)
    payload = json.loads(buffer.getvalue())
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    assert len(payload["traceEvents"]) == count
    # Three stage events (backend, dispatcher, core) per message.
    assert count == 3 * len(_messages())


def test_incomplete_message_raises():
    with pytest.raises(ValueError):
        chrome_trace_events([SendMessage(0, 1, 0, 128, 2, 1.0)])


# -- per-track time ordering --------------------------------------------------

def test_timestamps_monotonic_per_track():
    events = chrome_trace_events(_messages(count=6))
    by_track = {}
    for event in events:
        by_track.setdefault(event["tid"], []).append(event["ts"])
    assert len(by_track) >= 3  # backend, dispatcher, >=1 core track
    for track, stamps in by_track.items():
        assert stamps == sorted(stamps), f"track {track!r} out of order"


def test_counter_track_preserves_sample_order():
    times = [0.0, 5.0, 10.0, 15.0]
    events = counter_track_events("q", times, [0.0, 1.0, 2.0, 1.0])
    assert [e["ts"] for e in events] == [t * 1e-3 for t in times]


# -- ns -> µs conversion ------------------------------------------------------

def test_ns_to_us_conversion():
    (msg,) = [_message(0, t_arrival=2_000.0, stage_ns=500.0)]
    backend, dispatcher, core = chrome_trace_events([msg])
    assert backend["ts"] == pytest.approx(2.0)  # 2000 ns = 2 µs
    assert backend["dur"] == pytest.approx(0.5)
    assert dispatcher["ts"] == pytest.approx(2.5)
    assert core["ts"] == pytest.approx(3.0)
    assert core["dur"] == pytest.approx(0.5)


def test_counter_values_not_scaled():
    (event,) = counter_track_events("q", [1_000.0], [42.0])
    assert event["ts"] == pytest.approx(1.0)
    assert event["args"]["value"] == 42.0  # values are depths, not times


# -- telemetry snapshot integration -------------------------------------------

def _snapshot_with_series():
    snapshot = TelemetrySnapshot()
    for name in ("b_series", "a_series"):
        series = TimeSeries(name)
        series.append(0.0, 1.0)
        series.append(100.0, 2.0)
        snapshot.series[name] = series
    return snapshot


def test_telemetry_counter_events_sorted_by_name():
    events = telemetry_counter_events(_snapshot_with_series())
    assert [e["name"] for e in events] == [
        "a_series", "a_series", "b_series", "b_series"
    ]


def test_export_appends_counter_tracks():
    messages = _messages()
    buffer = io.StringIO()
    count = export_chrome_trace(
        messages, buffer, telemetry=_snapshot_with_series()
    )
    payload = json.loads(buffer.getvalue())
    assert count == 3 * len(messages) + 4
    phases = {event["ph"] for event in payload["traceEvents"]}
    assert phases == {"X", "C"}


def test_export_to_path(tmp_path):
    path = tmp_path / "trace.json"
    export_chrome_trace(_messages(), str(path))
    assert json.loads(path.read_text())["traceEvents"]
