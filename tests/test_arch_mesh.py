"""Mesh hop-latency model."""

import pytest

from repro.arch import ChipConfig, Mesh


@pytest.fixture
def mesh():
    return Mesh(ChipConfig())


class TestPositions:
    def test_core_positions_row_major(self, mesh):
        assert mesh.core_position(0) == (0, 0)
        assert mesh.core_position(3) == (0, 3)
        assert mesh.core_position(4) == (1, 0)
        assert mesh.core_position(15) == (3, 3)

    def test_backend_positions_one_per_row(self, mesh):
        for backend_id in range(4):
            assert mesh.backend_position(backend_id) == (backend_id, -1)

    def test_out_of_range(self, mesh):
        with pytest.raises(ValueError):
            mesh.core_position(16)
        with pytest.raises(ValueError):
            mesh.backend_position(4)


class TestLatency:
    def test_same_row_distance(self, mesh):
        # Backend 0 at (0,-1) → core 0 at (0,0): one hop = 1.5ns.
        assert mesh.backend_to_core_ns(0, 0) == pytest.approx(1.5)

    def test_far_corner(self, mesh):
        # Backend 0 at (0,-1) → core 15 at (3,3): 3 + 4 = 7 hops.
        assert mesh.backend_to_core_ns(0, 15) == pytest.approx(7 * 1.5)

    def test_symmetry(self, mesh):
        for backend_id in range(4):
            for core_id in range(16):
                assert mesh.backend_to_core_ns(
                    backend_id, core_id
                ) == mesh.core_to_backend_ns(core_id, backend_id)

    def test_backend_to_backend(self, mesh):
        assert mesh.backend_to_backend_ns(0, 0) == 0.0
        assert mesh.backend_to_backend_ns(0, 3) == pytest.approx(3 * 1.5)
        assert mesh.backend_to_backend_ns(3, 0) == pytest.approx(3 * 1.5)

    def test_indirection_is_a_few_ns(self, mesh):
        # §4.3: forwarding to the dispatcher adds "just a few ns".
        worst = max(
            mesh.backend_to_backend_ns(src, 0) for src in range(4)
        )
        assert worst <= 5.0

    def test_mean_backend_to_core(self, mesh):
        mean0 = mesh.mean_backend_to_core_ns(0)
        # Average over 16 cores of (row gap + col+1) hops.
        expected_hops = sum(
            abs(core // 4 - 0) + (core % 4 + 1) for core in range(16)
        ) / 16
        assert mean0 == pytest.approx(expected_hops * 1.5)


class TestScaling:
    def test_hop_latency_scales_with_cycles(self):
        slow = Mesh(ChipConfig(mesh_hop_cycles=12))
        fast = Mesh(ChipConfig(mesh_hop_cycles=3))
        assert slow.backend_to_core_ns(0, 15) == pytest.approx(
            4 * fast.backend_to_core_ns(0, 15)
        )
