"""Datacenter hierarchy: topology, schedulers, engines, driver, drift.

The contract under test, in rough order of importance:

1. both engines implement the *same* scheduler semantics — the DES
   router and the fast tier share one scheduler object per scenario,
   and their paired p50/p99 stay inside the cross-check band
   sub-critically;
2. JBSQ(k) actually bounds per-server outstanding work (the invariant
   ``max_outstanding <= k`` whenever any hold happened), and the ToR
   hold queues drain by the end of every run;
3. correlated whole-rack failures conserve work: offered = completed
   + lost, bit-identically across repeats and worker counts;
4. the repo's two registration hazards stay closed: every repro
   subpackage a sim entry point imports participates in the cache
   code fingerprint, and every experiment driver's ``engine=``
   surface matches the CLI's ENGINE_AWARE set.
"""

import re

import pytest

from repro.cluster import Cluster, HierarchicalFabric, PodFabric, UniformFabric
from repro.datacenter import (
    DEFAULT_JBSQ_K,
    DatacenterRouter,
    DatacenterTopology,
    NodeProfile,
    make_scheduler,
    merge_plans,
    node_profile,
    rack_power_loss,
    simulate_datacenter_fast,
    tor_crash,
)
from repro.balancing import SingleQueue
from repro.faults import FaultPlan


class TestHierarchicalFabric:
    def test_three_latency_tiers(self):
        fabric = HierarchicalFabric(
            16, rack_size=4, racks_per_pod=2,
            intra_rack_ns=100.0, inter_rack_ns=500.0, inter_pod_ns=1000.0,
        )
        assert fabric.latency_ns(0, 1) == 100.0     # same rack
        assert fabric.latency_ns(0, 4) == 500.0     # same pod, other rack
        assert fabric.latency_ns(0, 8) == 1000.0    # other pod
        assert fabric.num_racks == 4
        assert fabric.num_pods == 2

    def test_default_is_one_pod(self):
        fabric = HierarchicalFabric(8, rack_size=4)
        assert fabric.num_pods == 1
        assert fabric.latency_ns(0, 7) == fabric.inter_rack_ns

    def test_ragged_rack_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            HierarchicalFabric(10, rack_size=4)

    def test_single_rack_rejected(self):
        with pytest.raises(ValueError, match="at least 2 racks"):
            HierarchicalFabric(4, rack_size=4)

    def test_ragged_pod_rejected(self):
        with pytest.raises(ValueError, match="racks_per_pod"):
            HierarchicalFabric(16, rack_size=4, racks_per_pod=3)

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError, match="intra_rack_ns"):
            HierarchicalFabric(8, rack_size=4, intra_rack_ns=600.0)


class TestPodFabricValidation:
    def test_degenerate_single_pod_rejected(self):
        with pytest.raises(ValueError, match="UniformFabric"):
            PodFabric(4, pod_size=4)
        with pytest.raises(ValueError, match="UniformFabric"):
            PodFabric(4, pod_size=9)

    def test_ragged_last_pod_still_supported(self):
        # Documented semantics (see the PodFabric docstring): the last
        # pod may be smaller; existing topologies rely on it.
        ragged = PodFabric(7, pod_size=3)
        assert ragged.pod_of(6) == 2
        assert ragged.latency_ns(5, 6) == ragged.inter_pod_ns


class TestTopology:
    def test_shape_and_membership(self):
        topo = DatacenterTopology(4, 4)
        assert topo.num_nodes == 16
        assert topo.rack_of(0) == 0 and topo.rack_of(15) == 3
        assert list(topo.members(1)) == [4, 5, 6, 7]

    def test_fabric_matches_topology(self):
        topo = DatacenterTopology(4, 4)
        fabric = topo.fabric()
        assert isinstance(fabric, HierarchicalFabric)
        assert fabric.num_nodes == 16
        assert fabric.rack_of(5) == topo.rack_of(5)

    def test_mixed_generations_speeds(self):
        topo = DatacenterTopology.mixed_generations(
            4, 4, old_racks=1, old_speed=0.7
        )
        assert topo.rack_speed(0) == 1.0
        assert topo.rack_speed(3) == 0.7
        assert topo.speed_factors[-1] == 0.7
        assert topo.speed_factors[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="2 racks"):
            DatacenterTopology(1, 4)
        with pytest.raises(ValueError, match="rack_size"):
            DatacenterTopology(4, 1)

    def test_node_profiles(self):
        nano = node_profile("nanopu")
        base = node_profile("baseline")
        assert nano.chip_config().dispatch_ns < base.chip_config().dispatch_ns
        assert nano.costs().poll_detect_ns < base.costs().poll_detect_ns
        with pytest.raises(ValueError, match="nanopu"):
            node_profile("warp-drive")
        with pytest.raises(ValueError, match="positive"):
            NodeProfile("broken", ni_scale=0.0)


class TestSchedulers:
    def _believe(self, topo, values):
        return list(values), [
            sum(values[node] for node in topo.members(rack))
            for rack in range(topo.num_racks)
        ]

    def test_unknown_hierarchy_and_policy(self):
        topo = DatacenterTopology(4, 4)
        with pytest.raises(ValueError, match="hierarchy"):
            make_scheduler("clos", topo)
        with pytest.raises(ValueError, match="policy"):
            make_scheduler("racksched", topo, policy="lifo")

    def test_flat_never_routes_to_self(self):
        import numpy as np

        topo = DatacenterTopology(2, 4)
        sched = make_scheduler("flat", topo, policy="jsq2")
        sched.set_capacities([16.0] * topo.num_nodes)
        rng = np.random.default_rng(0)
        believe, rack_believe = self._believe(topo, [0] * topo.num_nodes)
        for client in range(topo.num_nodes):
            for _ in range(50):
                assert sched.choose(client, believe, rack_believe, rng) != client

    def test_two_level_jsq_prefers_idle_rack(self):
        import numpy as np

        topo = DatacenterTopology(4, 4)
        sched = make_scheduler("racksched", topo, policy="sed")
        sched.set_capacities([16.0] * topo.num_nodes)
        rng = np.random.default_rng(1)
        # Rack 0 loaded, rack 3 idle: sed's full scan must land in an
        # idle rack, and the ToR must pick its least-loaded member.
        believe = [5] * 4 + [1] * 4 + [1] * 4 + [0] * 4
        believe[13] = 2
        _, rack_believe = self._believe(topo, believe)
        for _ in range(20):
            chosen = sched.choose(0, believe, rack_believe, rng)
            assert topo.rack_of(chosen) == 3
            assert chosen != 13

    def test_skew_concentrates_popularity(self):
        import numpy as np

        topo = DatacenterTopology(8, 2)
        flat = make_scheduler("flat", topo, policy="random", skew=1.2)
        flat.set_capacities([16.0] * topo.num_nodes)
        rng = np.random.default_rng(2)
        believe, rack_believe = self._believe(topo, [0] * topo.num_nodes)
        counts = [0] * topo.num_racks
        for _ in range(2000):
            counts[topo.rack_of(flat.choose(15, believe, rack_believe, rng))] += 1
        assert counts[0] > counts[-1] * 2

    def test_labels(self):
        topo = DatacenterTopology(4, 4)
        assert make_scheduler("jbsq", topo, policy="jsq2").label == "jbsq+jsq2"
        assert make_scheduler("jbsq", topo).bound_k == DEFAULT_JBSQ_K
        assert make_scheduler("racksched", topo).bound_k is None


class TestFastEngine:
    def test_jbsq_bound_invariant(self):
        # A tight bound under hot-rack load must actually hold RPCs at
        # the ToR, and per-server outstanding must never exceed k.
        topo = DatacenterTopology(4, 4)
        audit = {}
        result = simulate_datacenter_fast(
            topo, hierarchy="jbsq", policy="random", skew=0.8, jbsq_k=4,
            per_node_mrps=26.0, requests_per_node=400, seed=3, _audit=audit,
        )
        assert audit["bound_k"] == 4
        assert audit["holds"] > 0
        assert audit["max_outstanding"] <= 4
        assert result.completed == topo.num_nodes * 400

    def test_unbounded_racksched_exceeds_tight_bound(self):
        topo = DatacenterTopology(4, 4)
        audit = {}
        simulate_datacenter_fast(
            topo, hierarchy="racksched", policy="random", skew=0.8,
            per_node_mrps=26.0, requests_per_node=400, seed=3, _audit=audit,
        )
        assert audit["holds"] == 0
        assert audit["max_outstanding"] > 4

    def test_nanopu_profile_cuts_latency(self):
        topo = DatacenterTopology(4, 4)
        base = simulate_datacenter_fast(
            topo, hierarchy="racksched", per_node_mrps=20.0,
            requests_per_node=300, seed=4,
        )
        nano = simulate_datacenter_fast(
            topo, hierarchy="nanopu", per_node_mrps=20.0,
            requests_per_node=300, seed=4,
        )
        assert nano.aggregate.p50 < base.aggregate.p50

    def test_repeat_runs_bit_identical(self):
        topo = DatacenterTopology(4, 4)
        kwargs = dict(
            hierarchy="jbsq", policy="jsq2", skew=0.5,
            per_node_mrps=24.0, requests_per_node=300, seed=5,
        )
        first = simulate_datacenter_fast(topo, **kwargs)
        second = simulate_datacenter_fast(topo, **kwargs)
        assert first.aggregate.p50 == second.aggregate.p50
        assert first.p99_ns == second.p99_ns
        assert first.router_stats.routed == second.router_stats.routed


class TestCorrelatedFailures:
    def test_rack_plan_expands_to_members(self):
        topo = DatacenterTopology(4, 4)
        plan = rack_power_loss(topo, rack=1, at_ns=1e5, outage_ns=5e4)
        assert len(plan.events) == 4
        assert sorted(event.node for event in plan.events) == [4, 5, 6, 7]
        assert all(event.at_ns == 1e5 for event in plan.events)
        with pytest.raises(ValueError, match="out of range"):
            tor_crash(topo, rack=4, at_ns=0.0)

    def test_merge_plans(self):
        topo = DatacenterTopology(4, 4)
        merged = merge_plans(
            [
                rack_power_loss(topo, 0, at_ns=1e5, outage_ns=5e4),
                tor_crash(topo, 2, at_ns=2e5, outage_ns=5e4),
            ]
        )
        assert len(merged.events) == 8
        with pytest.raises(ValueError, match="drop_prob"):
            merge_plans([FaultPlan(drop_prob=0.1)])

    def test_conservation_offered_equals_completed_plus_lost(self):
        topo = DatacenterTopology(4, 4)
        horizon_ns = 400 / 24.0 * 1e3
        plan = rack_power_loss(
            topo, rack=0, at_ns=0.3 * horizon_ns, outage_ns=0.4 * horizon_ns
        )
        result = simulate_datacenter_fast(
            topo, hierarchy="racksched", per_node_mrps=24.0,
            requests_per_node=400, seed=6, faults=plan,
        )
        assert result.offered == topo.num_nodes * 400
        assert result.offered == result.completed + result.lost
        assert result.lost > 0
        # Losses come only from the crashed rack's members.
        assert all(
            count > 0 for count in result.per_node_completed[4:]
        )


class TestDesRouter:
    def _run_des(self, topo, hierarchy, policy, seed, requests=300):
        profile = node_profile(
            "nanopu" if hierarchy == "nanopu" else topo.profile.name
        )
        cluster = Cluster(
            num_nodes=topo.num_nodes,
            scheme_factory=SingleQueue,
            config=profile.chip_config(),
            costs=profile.costs(),
            seed=seed,
            router=DatacenterRouter(topo, hierarchy=hierarchy, policy=policy),
            fabric=topo.fabric(),
        )
        return cluster.run(per_node_mrps=20.0, requests_per_node=requests)

    def test_bind_rejects_mismatched_cluster(self):
        topo = DatacenterTopology(4, 4)
        with pytest.raises(ValueError, match="16"):
            Cluster(
                num_nodes=8,
                scheme_factory=SingleQueue,
                router=DatacenterRouter(topo),
                fabric=UniformFabric(8),
            )

    def test_des_matches_fast_sub_critically(self):
        topo = DatacenterTopology(4, 4)
        for hierarchy in ("racksched", "nanopu"):
            des = self._run_des(topo, hierarchy, "jsq2", seed=7)
            fast = simulate_datacenter_fast(
                topo, hierarchy=hierarchy, policy="jsq2",
                per_node_mrps=20.0, requests_per_node=300, seed=7,
            )
            assert fast.aggregate.p50 == pytest.approx(
                des.aggregate.p50, rel=0.10
            )
            assert fast.p99_ns == pytest.approx(des.p99_ns, rel=0.15)

    def test_router_stats_label(self):
        topo = DatacenterTopology(4, 4)
        result = self._run_des(topo, "jbsq", "sed", seed=8, requests=100)
        assert result.router_stats.policy == "jbsq+sed"
        assert result.router_stats.decisions == topo.num_nodes * 100
        assert sum(result.router_stats.routed) == result.router_stats.decisions


class TestDriver:
    def test_smoke_profile_bit_identical_across_workers(self):
        from repro.experiments.datacenter import run_datacenter

        serial = run_datacenter(profile="smoke", seed=0, workers=1)
        parallel = run_datacenter(profile="smoke", seed=0, workers=2)
        # The determinism contract: identical tables and findings at
        # any worker count (wall-clock " took " lines stripped).
        def strip(result):
            return [
                line
                for line in result.table().splitlines()
                if " took " not in line
            ]

        assert strip(serial) == strip(parallel)
        assert serial.data["faults"] == parallel.data["faults"]
        for key, row in serial.data["points"].items():
            other = parallel.data["points"][key]
            assert row["p99_ns"] == other["p99_ns"], key

    def test_fluid_engine_rejected(self):
        from repro.experiments.datacenter import run_datacenter

        with pytest.raises(ValueError, match="does not support"):
            run_datacenter(profile="smoke", engine="fluid")


class TestRegistrationDrift:
    """Satellites 2 and 3: the two silent-drift hazards stay closed."""

    #: repro subpackages deliberately outside the code fingerprint
    #: (see SIM_MODULES in repro/cache/fingerprint.py).
    FINGERPRINT_EXEMPT = {"experiments", "runner", "cache"}

    def test_every_sim_import_is_fingerprinted(self):
        # Walk every repro subpackage the experiment drivers import
        # (including the lazy in-function imports the pool workers
        # execute) and require it to participate in the cache code
        # fingerprint: a simulation-relevant module missing from
        # SIM_MODULES would serve stale cached results after edits.
        import pathlib

        import repro
        from repro.cache.fingerprint import SIM_MODULES

        root = pathlib.Path(repro.__file__).parent
        pattern = re.compile(
            r"^\s*from (?:repro|\.)\.(\w+)[ .]", re.MULTILINE
        )
        imported = set()
        for source in (root / "experiments").glob("*.py"):
            imported.update(pattern.findall(source.read_text()))
        assert "datacenter" in imported  # the walk itself works
        missing = imported - set(SIM_MODULES) - self.FINGERPRINT_EXEMPT
        assert not missing, (
            f"sim modules imported by experiment drivers but absent from "
            f"SIM_MODULES (stale-cache hazard): {sorted(missing)}"
        )

    def test_sim_modules_exist_on_disk(self):
        import pathlib

        import repro
        from repro.cache.fingerprint import SIM_MODULES

        root = pathlib.Path(repro.__file__).parent
        for name in SIM_MODULES:
            path = root / name
            assert path.exists(), f"SIM_MODULES entry {name!r} not found"

    def test_engine_aware_matches_driver_signatures(self):
        # A driver that grows an engine= knob but is not registered in
        # ENGINE_AWARE silently ignores --engine; the reverse crashes.
        import inspect

        from repro.experiments.cli import ENGINE_AWARE, EXPERIMENTS

        for name, fn in EXPERIMENTS.items():
            has_engine = "engine" in inspect.signature(fn).parameters
            assert has_engine == (name in ENGINE_AWARE), (
                f"{name}: engine kwarg {'present' if has_engine else 'absent'}"
                f" but {'not ' if name not in ENGINE_AWARE else ''}in "
                "ENGINE_AWARE"
            )

    def test_engine_aware_drivers_resolve_capabilities(self):
        # Every engine-aware driver must route its knob through the
        # capability-aware resolver (or the DES-only gate) — ad-hoc
        # engine handling is how tiers silently drop features.
        import inspect
        import sys

        from repro.experiments.cli import ENGINE_AWARE, EXPERIMENTS

        for name in ENGINE_AWARE:
            module = sys.modules[EXPERIMENTS[name].__module__]
            source = inspect.getsource(module)
            assert "resolve_engine" in source or "require_des" in source, (
                f"{name}: engine-aware driver never calls resolve_engine/"
                "require_des"
            )
