"""ChipConfig: Table 1 parameters and validation."""

import pytest

from repro.arch import ChipConfig, DEFAULT_CONFIG, cycles_to_ns


class TestTable1Defaults:
    """The defaults must encode the paper's Table 1 / §5 platform."""

    def test_core_count_and_mesh(self):
        assert DEFAULT_CONFIG.num_cores == 16
        assert DEFAULT_CONFIG.mesh_rows == 4
        assert DEFAULT_CONFIG.mesh_cols == 4

    def test_clock_2ghz(self):
        assert DEFAULT_CONFIG.clock_ghz == 2.0

    def test_mesh_3_cycles_per_hop(self):
        assert DEFAULT_CONFIG.mesh_hop_cycles == 3
        assert DEFAULT_CONFIG.mesh_hop_ns == pytest.approx(1.5)

    def test_64_byte_blocks(self):
        assert DEFAULT_CONFIG.cache_block_bytes == 64

    def test_memory_50ns(self):
        assert DEFAULT_CONFIG.memory_latency_ns == 50.0

    def test_cache_latencies(self):
        # L1: 3 cycles; LLC: 6 cycles (Table 1).
        assert DEFAULT_CONFIG.l1_latency_ns == pytest.approx(1.5)
        assert DEFAULT_CONFIG.llc_latency_ns == pytest.approx(3.0)

    def test_cluster_of_200_nodes(self):
        assert DEFAULT_CONFIG.num_nodes == 200
        assert DEFAULT_CONFIG.num_remote_nodes == 199


class TestHelpers:
    def test_cycles_to_ns(self):
        assert cycles_to_ns(6, 2.0) == 3.0
        assert cycles_to_ns(600, 2.0) == 300.0

    def test_cycles_to_ns_invalid_clock(self):
        with pytest.raises(ValueError):
            cycles_to_ns(1, 0.0)

    def test_packets_for(self):
        assert DEFAULT_CONFIG.packets_for(1) == 1
        assert DEFAULT_CONFIG.packets_for(64) == 1
        assert DEFAULT_CONFIG.packets_for(65) == 2
        assert DEFAULT_CONFIG.packets_for(512) == 8

    def test_packets_for_invalid(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.packets_for(0)

    def test_with_updates(self):
        updated = DEFAULT_CONFIG.with_updates(num_backends=8)
        assert updated.num_backends == 8
        assert DEFAULT_CONFIG.num_backends == 4  # original untouched


class TestValidation:
    def test_core_count_must_match_mesh(self):
        with pytest.raises(ValueError, match="num_cores"):
            ChipConfig(num_cores=15)

    def test_backends_bounded(self):
        with pytest.raises(ValueError):
            ChipConfig(num_backends=0)
        with pytest.raises(ValueError):
            ChipConfig(num_backends=17)

    def test_min_nodes(self):
        with pytest.raises(ValueError):
            ChipConfig(num_nodes=1)

    def test_positive_slots(self):
        with pytest.raises(ValueError):
            ChipConfig(send_slots_per_node=0)

    def test_max_msg_holds_a_block(self):
        with pytest.raises(ValueError):
            ChipConfig(max_msg_bytes=32)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="dispatch_ns"):
            ChipConfig(dispatch_ns=-1.0)
