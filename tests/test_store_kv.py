"""KVStore service layer and the TimedKVStore cost integration."""

import numpy as np
import pytest

from repro.store import CostModel, KVStore, OpStats, TimedKVStore

RNG = lambda: np.random.default_rng(31)  # noqa: E731


class TestCostModel:
    def test_base_cost_composition(self):
        model = CostModel(
            fixed_ns=100.0,
            per_node_ns=10.0,
            per_level_ns=5.0,
            per_scan_item_ns=50.0,
            jitter_std_fraction=0.0,
        )
        stats = OpStats(nodes_traversed=3, levels_descended=2, items_scanned=4)
        assert model.base_cost_ns(stats) == 100 + 30 + 10 + 200

    def test_zero_jitter_is_deterministic(self):
        model = CostModel(jitter_std_fraction=0.0)
        stats = OpStats(5, 5)
        assert model.cost_ns(stats, RNG()) == model.base_cost_ns(stats)

    def test_jitter_centers_on_base(self):
        model = CostModel(jitter_std_fraction=0.2)
        stats = OpStats(10, 10)
        rng = RNG()
        samples = [model.cost_ns(stats, rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(
            model.base_cost_ns(stats), rel=0.02
        )

    def test_jitter_never_negative(self):
        model = CostModel(jitter_std_fraction=0.9)
        stats = OpStats(10, 10)
        rng = RNG()
        base = model.base_cost_ns(stats)
        for _ in range(5_000):
            assert model.cost_ns(stats, rng) >= 0.1 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(fixed_ns=-1.0)
        with pytest.raises(ValueError):
            CostModel(jitter_std_fraction=1.0)


class TestKVStore:
    def test_accounting(self):
        store = KVStore(rng=np.random.default_rng(0))
        store.put(1, "a")
        store.get(1)
        store.scan(0, 10)
        store.delete(1)
        assert store.ops == 4
        assert store.total_hops > 0

    def test_operations(self):
        store = KVStore(rng=np.random.default_rng(0))
        store.put(2, "b")
        assert store.get(2)[0] == "b"
        assert len(store) == 1
        removed, _stats = store.delete(2)
        assert removed
        assert len(store) == 0


class TestTimedKVStore:
    def test_get_costs_near_masstree_mean(self):
        # Calibration target: ~1.25µs gets on a 100k-key store.
        store = TimedKVStore(num_keys=100_000, seed=2)
        rng = RNG()
        gets = [store.timed_get(rng) for _ in range(2_000)]
        assert np.mean(gets) == pytest.approx(1250.0, rel=0.15)
        assert store.expected_get_ns == pytest.approx(1250.0, rel=0.15)

    def test_scan_costs_in_paper_band(self):
        # §5: scan runtime 60-120µs for 100-key scans.
        store = TimedKVStore(num_keys=100_000, seed=2)
        rng = RNG()
        scans = [store.timed_scan(100, rng) for _ in range(200)]
        assert 50_000.0 < np.mean(scans) < 130_000.0
        assert store.expected_scan_ns(100) == pytest.approx(
            np.mean(scans), rel=0.2
        )

    def test_preloaded_keys_present(self):
        store = TimedKVStore(num_keys=1_000, seed=0)
        assert len(store.store) == 1_000
        value, _stats = store.store.get(500)
        assert value == "value-500"

    def test_invalid_num_keys(self):
        with pytest.raises(ValueError):
            TimedKVStore(num_keys=0)


class TestHashTable:
    def make(self):
        from repro.store import HashTable

        return HashTable(num_buckets=16)

    def test_put_get_delete(self):
        table = self.make()
        table.put("k", 1)
        value, stats = table.get("k")
        assert value == 1
        assert stats.levels_descended == 1
        removed, _stats = table.delete("k")
        assert removed
        assert table.get("k")[0] is None
        assert len(table) == 0

    def test_update_in_place(self):
        table = self.make()
        table.put(5, "a")
        table.put(5, "b")
        assert len(table) == 1
        assert table.get(5)[0] == "b"

    def test_chain_work_reported(self):
        from repro.store import HashTable

        table = HashTable(num_buckets=1)  # force one chain
        for key in range(10):
            table.put(key, key)
        _value, stats = table.get(9)
        assert stats.nodes_traversed == 10  # walked the whole chain

    def test_matches_dict_reference(self):
        import numpy as np

        table = self.make()
        reference = {}
        rng = np.random.default_rng(4)
        for _ in range(3000):
            op = rng.integers(0, 3)
            key = int(rng.integers(0, 100))
            if op == 0:
                value = int(rng.integers(0, 1000))
                table.put(key, value)
                reference[key] = value
            elif op == 1:
                assert table.get(key)[0] == reference.get(key)
            else:
                removed, _stats = table.delete(key)
                assert removed == (key in reference)
                reference.pop(key, None)
        assert sorted(table.items()) == sorted(reference.items())
        assert len(table) == len(reference)

    def test_resize_preserves_contents(self):
        table = self.make()
        for key in range(50):
            table.put(key, key * 2)
        table.resize(256)
        assert table.num_buckets == 256
        assert len(table) == 50
        assert table.get(33)[0] == 66

    def test_validation(self):
        from repro.store import HashTable

        with pytest.raises(ValueError):
            HashTable(num_buckets=0)
        table = self.make()
        with pytest.raises(ValueError):
            table.resize(0)


class TestTimedHashKV:
    def test_mean_get_near_herd(self):
        import numpy as np

        from repro.store import TimedHashKV

        store = TimedHashKV(num_keys=50_000, seed=1)
        rng = RNG()
        gets = [store.timed_get(rng) for _ in range(3_000)]
        # Calibrated to the paper's HERD mean of 330ns.
        assert np.mean(gets) == pytest.approx(330.0, rel=0.1)
        assert store.expected_get_ns == pytest.approx(330.0, rel=0.1)

    def test_put_works(self):
        from repro.store import TimedHashKV

        store = TimedHashKV(num_keys=1_000, seed=1)
        assert store.timed_put(RNG()) > 0

    def test_execution_driven_herd_workload(self):
        from repro.store import TimedHashKV
        from repro.workloads import HerdWorkload

        store = TimedHashKV(num_keys=20_000, seed=1)
        workload = HerdWorkload(store=store)
        assert workload.mean_processing_ns == store.expected_get_ns
        service, label = workload.sample(RNG())
        assert service > 0
        assert label == "rpc"

    def test_validation(self):
        from repro.store import TimedHashKV

        with pytest.raises(ValueError):
            TimedHashKV(num_keys=0)
        with pytest.raises(ValueError):
            TimedHashKV(num_keys=10, buckets_per_key=0.0)
