"""Gamma / LogNormal / Weibull / Pareto."""

import math

import numpy as np
import pytest

from .conftest import integrate
from repro.dists import Gamma, LogNormal, Pareto, Weibull

RNG = lambda: np.random.default_rng(77)  # noqa: E731
N = 200_000


class TestGamma:
    def test_moments(self):
        dist = Gamma(shape=4.0, scale=82.5)
        assert dist.mean == pytest.approx(330.0)
        assert dist.variance == pytest.approx(4.0 * 82.5**2)
        assert dist.cv2 == pytest.approx(0.25)

    def test_from_mean_cv2(self):
        dist = Gamma.from_mean_cv2(mean=1250.0, cv2=1.0 / 3.0)
        assert dist.mean == pytest.approx(1250.0)
        assert dist.cv2 == pytest.approx(1.0 / 3.0)

    def test_sample_stats(self):
        dist = Gamma(shape=3.0, scale=100.0)
        samples = dist.sample_array(RNG(), N)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.02)
        assert samples.var() == pytest.approx(dist.variance, rel=0.05)

    def test_pdf_integrates_to_one(self):
        dist = Gamma(shape=4.0, scale=82.5)
        xs = np.linspace(0, 5000, 100_001)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            Gamma.from_mean_cv2(-1.0, 0.5)


class TestLogNormal:
    def test_from_mean_std(self):
        dist = LogNormal.from_mean_std(mean=500.0, std=250.0)
        assert dist.mean == pytest.approx(500.0)
        assert dist.std == pytest.approx(250.0)

    def test_sample_stats(self):
        dist = LogNormal.from_mean_std(mean=500.0, std=250.0)
        samples = dist.sample_array(RNG(), N)
        assert samples.mean() == pytest.approx(500.0, rel=0.02)

    def test_pdf_integrates_to_one(self):
        dist = LogNormal.from_mean_std(mean=100.0, std=50.0)
        xs = np.linspace(0, 2000, 100_001)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, 0.0)


class TestWeibull:
    def test_moments_match_samples(self):
        dist = Weibull(shape=1.5, scale=200.0)
        samples = dist.sample_array(RNG(), N)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.02)
        assert samples.var() == pytest.approx(dist.variance, rel=0.05)

    def test_shape_one_is_exponential(self):
        dist = Weibull(shape=1.0, scale=300.0)
        assert dist.mean == pytest.approx(300.0)
        assert dist.variance == pytest.approx(300.0**2)

    def test_pdf_integrates_to_one(self):
        dist = Weibull(shape=2.0, scale=100.0)
        xs = np.linspace(0, 1000, 50_001)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, rel=1e-3)


class TestPareto:
    def test_moments(self):
        dist = Pareto(alpha=3.0, xmin=100.0)
        assert dist.mean == pytest.approx(150.0)
        assert math.isfinite(dist.variance)

    def test_infinite_moments(self):
        assert math.isinf(Pareto(alpha=0.9, xmin=1.0).mean)
        assert math.isinf(Pareto(alpha=1.5, xmin=1.0).variance)

    def test_samples_above_xmin(self):
        samples = Pareto(alpha=2.0, xmin=50.0).sample_array(RNG(), N)
        assert samples.min() >= 50.0

    def test_sample_mean(self):
        dist = Pareto(alpha=3.0, xmin=100.0)
        samples = dist.sample_array(RNG(), N)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.03)

    def test_pdf_integrates_to_one(self):
        dist = Pareto(alpha=2.5, xmin=10.0)
        xs = np.linspace(10, 10_000, 1_000_001)
        assert integrate(dist.pdf(xs), xs) == pytest.approx(1.0, abs=0.01)
