"""Experiment drivers: every figure regenerates with the right shape."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    PROFILES,
    distribution_moments,
    load_grid,
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig6,
    run_fig7a,
    run_fig8,
    run_outstanding_ablation,
    unit_mean_service,
)
from repro.experiments.common import get_profile


class TestCommon:
    def test_profiles_exist(self):
        assert {"smoke", "quick", "full"} <= set(PROFILES)
        assert PROFILES["full"].arch_requests > PROFILES["quick"].arch_requests

    def test_get_profile_unknown(self):
        with pytest.raises(ValueError):
            get_profile("publication")

    def test_load_grid(self):
        grid = load_grid(0.1, 0.9, 5)
        assert len(grid) == 5
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(0.9)
        with pytest.raises(ValueError):
            load_grid(0.9, 0.1, 5)
        with pytest.raises(ValueError):
            load_grid(0.1, 0.9, 1)

    def test_unit_mean_service(self):
        for kind in ("fixed", "uniform", "exponential", "gev"):
            assert unit_mean_service(kind).mean == pytest.approx(1.0, rel=0.01)

    def test_registry_covers_all_figures(self):
        expected = {
            "fig2a", "fig2b", "fig2c", "fig6", "fig7a", "fig7b", "fig7c",
            "fig8", "fig9", "headline",
        }
        assert expected <= set(EXPERIMENTS)


class TestFig2:
    def test_fig2a_ordering(self):
        result = run_fig2a(profile="smoke", seed=1)
        p99s = result.data["high_load_p99"]
        # Fig 2a: performance proportional to U.
        assert p99s["1x16"] < p99s["4x4"] < p99s["16x1"]
        assert p99s["1x16"] < p99s["2x8"]
        assert p99s["8x2"] < p99s["16x1"]
        assert result.table()  # renders

    def test_fig2b_variance_ordering(self):
        result = run_fig2b(profile="smoke", seed=1)
        p99s = result.data["pre_saturation_p99"]
        assert p99s["fixed"] <= p99s["uniform"] <= p99s["exponential"] <= p99s["gev"]

    def test_fig2c_gap_larger_than_fig2b(self):
        # The 16x1/1x16 gap grows with variance (GEV worst).
        single = run_fig2b(profile="smoke", seed=1).data["pre_saturation_p99"]
        partitioned = run_fig2c(profile="smoke", seed=1).data["pre_saturation_p99"]
        for kind in ("fixed", "uniform", "exponential", "gev"):
            assert partitioned[kind] > single[kind]
        gev_gap = partitioned["gev"] / single["gev"]
        fixed_gap = partitioned["fixed"] / single["fixed"]
        assert gev_gap > fixed_gap


class TestFig6:
    def test_moments_table(self):
        result = run_fig6(profile="smoke", seed=0)
        data = result.data
        assert data["herd"]["mean_analytic"] == pytest.approx(330.0)
        assert data["masstree_get"]["mean_analytic"] == pytest.approx(1250.0)
        for kind in ("fixed", "uniform", "exponential", "gev"):
            assert data[kind]["mean_analytic"] == pytest.approx(600.0, rel=0.01)

    def test_distribution_moments_fields(self):
        from repro.dists import herd

        moments = distribution_moments(herd(), 10_000, seed=0)
        assert set(moments) == {
            "mean_analytic", "mean_sampled", "cv2", "p50", "p99", "max",
        }
        assert moments["p99"] >= moments["p50"]


class TestFig7a:
    def test_scheme_ordering_under_slo(self):
        result = run_fig7a(profile="smoke", seed=0)
        sweeps = result.data["sweeps"]
        slo = result.data["slo_ns"]
        single = sweeps["1x16"].throughput_under_slo(slo)
        grouped = sweeps["4x4"].throughput_under_slo(slo)
        partitioned = sweeps["16x1"].throughput_under_slo(slo)
        assert single >= grouped >= partitioned
        assert single > 0

    def test_measured_service_time_near_paper(self):
        result = run_fig7a(profile="smoke", seed=0)
        # Paper: S̄ ≈ 550ns for HERD.
        assert result.data["mean_service_ns"] == pytest.approx(550.0, rel=0.05)


class TestFig8:
    def test_hardware_beats_software(self):
        result = run_fig8(profile="smoke", seed=0)
        for kind, ratio in result.data["ratios"].items():
            assert ratio > 1.5, kind

    def test_tables_render(self):
        result = run_fig8(profile="smoke", seed=0)
        text = result.table()
        assert "fixed_hw" in text
        assert "fixed_sw" in text


class TestAblations:
    def test_outstanding_ablation_structure(self):
        result = run_outstanding_ablation(profile="smoke", seed=0)
        assert set(result.data["by_limit"]) == {1, 2, 4}
        for stats in result.data["by_limit"].values():
            assert stats["tput_mrps"] > 0


class TestFig7bc:
    def test_fig7b_shape(self):
        from repro.experiments import run_fig7b

        result = run_fig7b(profile="smoke", seed=0)
        sweeps = result.data["sweeps"]
        slo = result.data["slo_ns"]
        assert sweeps["16x1"].throughput_under_slo(slo) == 0.0
        assert sweeps["1x16"].throughput_under_slo(slo) > 2.0

    def test_fig7c_shape(self):
        from repro.experiments import run_fig7c

        result = run_fig7c(profile="smoke", seed=0, kinds=("gev",))
        sweeps = result.data["sweeps"]["gev"]
        slo = result.data["slo_ns_gev"]
        assert sweeps["1x16_gev"].throughput_under_slo(slo) >= sweeps[
            "16x1_gev"
        ].throughput_under_slo(slo)


class TestFig9:
    def test_within_band(self):
        from repro.experiments import run_fig9

        result = run_fig9(profile="smoke", seed=0)
        for kind in ("fixed", "gev"):
            assert result.data[kind]["worst_gap"] < 0.35

    def test_model_and_sim_same_grid(self):
        from repro.experiments import model_vs_simulation

        panel = model_vs_simulation("exponential", "smoke", 0)
        model_loads = [p.offered_load for p in panel["model"].points]
        sim_loads = [p.offered_load for p in panel["sim"].points]
        assert model_loads == sim_loads


class TestExtensions:
    def test_validate_driver(self):
        from repro.experiments import run_validate

        result = run_validate(profile="smoke", seed=0)
        assert result.data["worst_error"] < 0.15
        assert "closed-form" in result.table()

    def test_dynamic_slots_driver(self):
        from repro.experiments import run_dynamic_slots

        result = run_dynamic_slots(profile="smoke", seed=0)
        static = result.data["static"]
        pooled = result.data["dynamic_512"]
        assert pooled["recv_footprint_mib"] < static["recv_footprint_mib"]

    def test_scalability_driver(self):
        from repro.experiments import run_scalability_ablation

        result = run_scalability_ablation(profile="smoke", seed=0)
        by_cores = result.data["by_cores"]
        assert set(by_cores) == {4, 16, 64}
        # Busy fraction grows with core count but stays below 50%.
        assert (
            by_cores[4]["dispatcher_busy"]
            < by_cores[16]["dispatcher_busy"]
            < by_cores[64]["dispatcher_busy"]
            < 0.5
        )


class TestClusterAndSprayDrivers:
    def test_cluster_driver(self):
        from repro.experiments import run_cluster

        result = run_cluster(profile="smoke", seed=0)
        single = result.data["1x16/node"]
        partitioned = result.data["16x1/node"]
        assert single["p99_ns"] < partitioned["p99_ns"]
        assert single["total_tput_mrps"] == pytest.approx(
            partitioned["total_tput_mrps"], rel=0.05
        )

    def test_rss_spray_driver(self):
        from repro.experiments import run_rss_spray

        result = run_rss_spray(profile="smoke", seed=0)
        by_config = result.data["by_config"]
        assert len(by_config) == 6
        # Under sender skew, per-source RSS collapses...
        rss_skewed = by_config["16x1 per-source (RSS)/skew=1.2"]
        rss_uniform = by_config["16x1 per-source (RSS)/skew=0"]
        assert rss_skewed["tput_mrps"] < 0.6 * rss_uniform["tput_mrps"]
        assert rss_skewed["stall_fraction"] > 0.1
        # ... while RPCValet's dispatch is skew-blind.
        valet_skewed = by_config["1x16 (RPCValet)/skew=1.2"]
        valet_uniform = by_config["1x16 (RPCValet)/skew=0"]
        assert valet_skewed["p99_ns"] == pytest.approx(
            valet_uniform["p99_ns"], rel=0.15
        )


class TestExtensionDriversSmoke:
    def test_preemption_driver(self):
        from repro.experiments import run_preemption

        result = run_preemption(profile="smoke", seed=0)
        assert "run_to_completion_get_p99_us" in result.data
        # The best quantum never makes the get tail materially worse.
        best = min(
            result.data[f"quantum_{q}us_get_p99_us"] for q in ("5", "10", "15")
        )
        assert best <= 1.1 * result.data["run_to_completion_get_p99_us"]

    def test_hedging_driver(self):
        from repro.experiments import run_hedging

        result = run_hedging(profile="smoke", seed=0)
        for row in result.data.values():
            # The single queue dominates hedged duplication everywhere.
            assert row["single_queue_p99"] <= row["hedged_p99"]

    def test_straggler_driver(self):
        from repro.experiments import run_straggler_ablation

        result = run_straggler_ablation(profile="smoke", seed=0)
        by_config = result.data["by_config"]
        assert (
            by_config["16x1/1 straggler core"]["p99_ns"]
            > by_config["1x16/1 straggler core"]["p99_ns"]
        )


class TestBurstsDriver:
    def test_two_regimes(self):
        from repro.experiments import run_bursts

        result = run_bursts(profile="smoke", seed=0)
        stationary = result.data["stationary 0.6"]["ratio"]
        sub_capacity = result.data["bursts to 0.95x capacity"]["ratio"]
        overload = result.data["bursts to 2.5x capacity"]["ratio"]
        # Sub-capacity bursts widen the gap; overload bursts compress it.
        assert sub_capacity > stationary
        assert overload < stationary
        # Absolute tails explode under overload bursts for both systems.
        assert (
            result.data["bursts to 2.5x capacity"]["single_p99"]
            > 5 * result.data["stationary 0.6"]["single_p99"]
        )
