"""Content-addressed result cache: keys, store, runner integration."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

import repro.cache.store as store_module
from repro.cache import (
    CacheStats,
    ResultCache,
    Unfingerprintable,
    cache_stats,
    code_fingerprint,
    fingerprint,
    get_cache,
    resolve_cache,
    set_cache,
)
from repro.core import make_system
from repro.core.system import run_point_task, sweep_many
from repro.runner import map_points, schedule_order


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """Keep the process-wide cache switch off regardless of the env."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    set_cache(None, None)
    yield
    set_cache(None, None)


def _double(task):
    return task * 2


def _canonical(value) -> bytes:
    """Pickle bytes normalized by one round-trip.

    A fresh object and its unpickled twin can serialize to different
    byte streams with equal content (CPython interns instance-state
    dict keys on BUILD, changing string-sharing topology). One
    round-trip reaches the fixed point, so canonical bytes compare
    bit-identical iff the values are.
    """
    return pickle.dumps(
        pickle.loads(pickle.dumps(value, pickle.HIGHEST_PROTOCOL)),
        pickle.HIGHEST_PROTOCOL,
    )


def _make_point(seed):
    system = make_system("1x16", "synthetic-fixed", seed=seed)
    return (system, 1.0, 400, 0.1, seed)


class TestFingerprint:
    def test_stable_across_calls(self):
        task = {"a": [1, 2.5, "x"], "b": (None, True)}
        assert fingerprint(task) == fingerprint(task)

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})
        assert fingerprint(1.0) != fingerprint(1)
        assert fingerprint([1, 2]) != fingerprint((1, 2))

    def test_numpy_arrays(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))
        assert fingerprint(a) != fingerprint(a.astype(np.float32))

    def test_instances_hash_by_state(self):
        a = _make_point(seed=3)
        b = _make_point(seed=3)
        c = _make_point(seed=4)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_fault_config_changes_the_fingerprint(self):
        from repro.faults import FaultPlan, NodeCrash, RetryConfig

        base = (FaultPlan(drop_prob=0.1), RetryConfig())
        twin = (FaultPlan(drop_prob=0.1), RetryConfig())
        other_plan = (FaultPlan(drop_prob=0.2), RetryConfig())
        other_retry = (FaultPlan(drop_prob=0.1), RetryConfig(max_retries=None))
        with_event = (
            FaultPlan(
                drop_prob=0.1,
                events=(NodeCrash(node=0, at_ns=10.0, outage_ns=5.0),),
            ),
            RetryConfig(),
        )
        prints = [
            fingerprint(value)
            for value in (base, other_plan, other_retry, with_event)
        ]
        assert fingerprint(base) == fingerprint(twin)
        assert len(set(prints)) == 4

    def test_fault_task_key_changes_with_fault_config(self, cache):
        from repro.experiments.faults import _run_faults_task

        def task(plan_kwargs, retry_kwargs):
            return ("k", 12.0, plan_kwargs, retry_kwargs, None, 100, 1)

        base = cache.key_for(
            _run_faults_task, task((("drop_prob", 0.1),), (("max_retries", 2),))
        )
        other_plan = cache.key_for(
            _run_faults_task, task((("drop_prob", 0.2),), (("max_retries", 2),))
        )
        other_retry = cache.key_for(
            _run_faults_task,
            task((("drop_prob", 0.1),), (("max_retries", None),)),
        )
        assert len({base, other_plan, other_retry}) == 3

    def test_live_rng_refused(self):
        with pytest.raises(Unfingerprintable):
            fingerprint(np.random.default_rng(0))

    def test_code_fingerprint_is_short_hex(self):
        digest = code_fingerprint()
        assert len(digest) == 20
        int(digest, 16)


class TestResultCache:
    def test_hit_returns_bit_identical_point(self, cache):
        task = _make_point(seed=7)
        key = cache.key_for(run_point_task, task)
        assert key is not None
        computed = run_point_task(task)
        assert cache.store(key, computed, wall_s=1.25)
        hit, value, wall_s = cache.lookup(key)
        assert hit and wall_s == 1.25
        assert value.p99 == computed.p99
        assert value.mean_service_ns == computed.mean_service_ns
        assert _canonical(value) == _canonical(computed)

    def test_seed_and_config_changes_change_the_key(self, cache):
        base = cache.key_for(run_point_task, _make_point(seed=7))
        other_seed = cache.key_for(run_point_task, _make_point(seed=8))
        system, load, n, warm, seed = _make_point(seed=7)
        other_load = cache.key_for(run_point_task, (system, 2.0, n, warm, seed))
        assert len({base, other_seed, other_load}) == 3

    def test_code_fingerprint_bump_invalidates(self, cache, monkeypatch):
        task = _make_point(seed=7)
        before = cache.key_for(run_point_task, task)
        monkeypatch.setattr(
            store_module, "code_fingerprint", lambda: "deadbeefdeadbeefdead"
        )
        after = cache.key_for(run_point_task, task)
        assert before != after

    def test_corrupt_entry_degrades_to_miss(self, cache):
        key = cache.key_for(_double, 21)
        cache.store(key, 42, wall_s=0.5)
        path = cache._entry_path(key)
        path.write_bytes(path.read_bytes()[:10])  # truncate
        hit, value, _ = cache.lookup(key)
        assert not hit and value is None
        assert cache.stats.errors == 1
        assert not path.exists()  # discarded, will be recomputed

    def test_wrong_key_payload_degrades_to_miss(self, cache):
        key = cache.key_for(_double, 21)
        other = cache.key_for(_double, 34)
        cache.store(key, 42, wall_s=0.0)
        cache._entry_path(other).parent.mkdir(parents=True, exist_ok=True)
        cache._entry_path(other).write_bytes(
            cache._entry_path(key).read_bytes()
        )
        hit, _, _ = cache.lookup(other)
        assert not hit

    def test_uncacheable_task_returns_none(self, cache):
        key = cache.key_for(_double, np.random.default_rng(0))
        assert key is None
        assert cache.stats.uncacheable == 1

    def test_duration_ewma(self, cache):
        dkey = cache.duration_key(_double, "label")
        assert cache.expected_duration(dkey) is None
        cache.record_duration(dkey, 2.0)
        cache.record_duration(dkey, 1.0)
        assert cache.expected_duration(dkey) == pytest.approx(1.5)


def _store_one(args):
    root, key, value = args
    cache = ResultCache(root)
    cache.store(key, value, wall_s=0.1)
    return cache.lookup(key)[0]


class TestConcurrentWriters:
    def test_parallel_writers_leave_an_intact_entry(self, tmp_path):
        root = tmp_path / "cache"
        key = ResultCache(root).key_for(_double, 21)
        payload = {"values": list(range(100))}
        try:
            with ProcessPoolExecutor(max_workers=4) as pool:
                results = list(
                    pool.map(
                        _store_one, [(root, key, payload) for _ in range(8)]
                    )
                )
        except OSError:  # pragma: no cover - no multiprocessing available
            pytest.skip("process pool unavailable")
        assert all(results)
        hit, value, _ = ResultCache(root).lookup(key)
        assert hit and value == payload


class TestRunnerIntegration:
    def test_map_points_hits_on_second_call(self, cache):
        tasks = [1, 2, 3]
        first = map_points(_double, tasks, workers=1, cache=cache)
        assert first.results == [2, 4, 6]
        assert (first.cache_hits, first.cache_misses) == (0, 3)
        second = map_points(_double, tasks, workers=1, cache=cache)
        assert second.results == [2, 4, 6]
        assert (second.cache_hits, second.cache_misses) == (3, 0)
        assert cache.stats.stores == 3

    def test_cached_sweep_points_bit_identical(self, cache):
        def run():
            systems = {"1x16": make_system("1x16", "synthetic-fixed", seed=7)}
            return sweep_many(
                systems, [0.5, 1.0], num_requests=400, experiment="t"
            )["1x16"]

        set_cache(True, cache.root)
        cold = run()
        warm = run()
        set_cache(False)
        uncached = run()
        for a, b, c in zip(cold.points, warm.points, uncached.points):
            assert a.p99 == b.p99 == c.p99
            assert _canonical(a) == _canonical(b) == _canonical(c)
        assert get_cache(cache.root).stats.hits == 2

    def test_cache_disabled_by_default(self):
        outcome = map_points(_double, [1, 2], workers=1)
        assert (outcome.cache_hits, outcome.cache_misses) == (0, 0)

    def test_resolve_cache_env(self, monkeypatch, tmp_path):
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
        resolved = resolve_cache(None)
        assert isinstance(resolved, ResultCache)
        assert resolved.root == tmp_path / "envcache"
        assert resolve_cache(False) is None

    def test_stats_aggregate(self, tmp_path):
        set_cache(True, tmp_path / "agg")
        map_points(_double, [5], workers=1)
        map_points(_double, [5], workers=1)
        merged = cache_stats()
        assert isinstance(merged, CacheStats)
        assert merged.hits >= 1 and merged.stores >= 1


class TestScheduleOrder:
    def test_cost_hint_fallback_orders_longest_first(self):
        order = schedule_order([0, 1, 2], cost_hints=[0.2, 0.9, 0.5])
        assert order == [1, 2, 0]

    def test_index_fallback_is_descending(self):
        assert schedule_order([0, 1, 2]) == [2, 1, 0]

    def test_recorded_durations_win_over_hints(self, cache):
        labels = ["a", "b"]
        cache.record_duration(cache.duration_key(_double, "a"), 0.1)
        cache.record_duration(cache.duration_key(_double, "b"), 5.0)
        order = schedule_order(
            [0, 1], fn=_double, labels=labels, store=cache, cost_hints=[9, 1]
        )
        assert order == [1, 0]
