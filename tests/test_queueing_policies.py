"""Routed multi-queue systems: JSQ / Power-of-d / JIQ / RR / random."""

import numpy as np
import pytest

from repro.queueing import (
    JIQRouter,
    JSQRouter,
    PowerOfDRouter,
    RandomRouter,
    RoundRobinRouter,
    poisson_arrivals,
    simulate_fifo_queue,
    simulate_routed_queues,
)


def _run(router, load=0.85, n=80_000, num_queues=16, servers=1, seed=0):
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rng, rate=load * num_queues * servers, count=n)
    services = rng.exponential(1.0, n)
    route_rng = np.random.default_rng(seed + 1)
    sojourns = simulate_routed_queues(
        arrivals, services, num_queues, servers, router, route_rng
    )
    return sojourns[n // 10:]  # trim warmup


class TestCorrectness:
    def test_single_queue_any_router_matches_fifo(self):
        # With one queue every router must reproduce plain G/G/c FIFO.
        rng = np.random.default_rng(2)
        n = 5000
        arrivals = poisson_arrivals(rng, 3.0, n)
        services = rng.exponential(1.0, n)
        expected = simulate_fifo_queue(arrivals, services, 4) - arrivals
        for router in (RandomRouter(), JSQRouter(), JIQRouter()):
            actual = simulate_routed_queues(
                arrivals, services, 1, 4, router, np.random.default_rng(0)
            )
            np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_round_robin_is_cyclic(self):
        router = RoundRobinRouter()
        choices = [router.choose([0] * 4, [1] * 4, None) for _ in range(8)]
        assert choices == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_all_requests_complete(self):
        sojourns = _run(JSQRouter(), n=5000)
        assert np.all(sojourns > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_routed_queues(
                np.array([1.0, 0.0]), np.zeros(2), 2, 1, RandomRouter()
            )
        with pytest.raises(ValueError):
            simulate_routed_queues(np.zeros(1), np.zeros(1), 0, 1, RandomRouter())
        with pytest.raises(ValueError):
            PowerOfDRouter(0)


class TestPolicyQuality:
    """Orderings the queueing literature predicts (related work, §7)."""

    def test_jsq_beats_random(self):
        random_p99 = np.percentile(_run(RandomRouter()), 99)
        jsq_p99 = np.percentile(_run(JSQRouter()), 99)
        assert jsq_p99 < random_p99 / 2  # JSQ is dramatically better

    def test_power_of_two_between_random_and_jsq(self):
        random_p99 = np.percentile(_run(RandomRouter()), 99)
        pod2_p99 = np.percentile(_run(PowerOfDRouter(2)), 99)
        jsq_p99 = np.percentile(_run(JSQRouter()), 99)
        assert jsq_p99 <= pod2_p99 <= random_p99

    def test_more_choices_help(self):
        p99s = [
            np.percentile(_run(PowerOfDRouter(d)), 99) for d in (1, 2, 4)
        ]
        assert p99s[2] < p99s[1] < p99s[0]

    def test_jiq_beats_random(self):
        random_p99 = np.percentile(_run(RandomRouter()), 99)
        jiq_p99 = np.percentile(_run(JIQRouter()), 99)
        assert jiq_p99 < random_p99

    def test_d1_is_random(self):
        # Power-of-1 = uniform random choice: same distributional
        # behaviour (not identical draws, so compare statistics).
        pod1 = np.percentile(_run(PowerOfDRouter(1), seed=5), 99)
        rand = np.percentile(_run(RandomRouter(), seed=5), 99)
        assert pod1 == pytest.approx(rand, rel=0.25)
