"""Cross-layer integration tests: the paper's claims end to end."""

import pytest

from repro import (
    ChipConfig,
    MicrobenchCosts,
    RpcValetSystem,
    SingleQueue,
    SyntheticWorkload,
    make_system,
)
from repro.experiments.fig9 import model_vs_simulation
from repro.workloads import MasstreeWorkload


class TestSingleQueueEmulation:
    """§3.3/§6.3: RPCValet emulates the theoretical single queue."""

    def test_sim_close_to_model_below_saturation(self):
        # The paper's Fig. 9 claim: within 3-16%. Allow slack for the
        # smoke profile's small sample sizes.
        for kind in ("fixed", "exponential"):
            panel = model_vs_simulation(kind, "smoke", seed=1)
            assert panel["worst_gap"] < 0.35, kind

    def test_conservation(self):
        # Every generated request is eventually completed exactly once.
        system = make_system("1x16", "synthetic-gev", seed=2)
        result = system.run_point(offered_mrps=10.0, num_requests=8_000)
        assert result.completed == 8_000


class TestTailOrderingAcrossLayers:
    def test_theory_and_arch_sim_agree_on_winner(self):
        # Both layers must rank 1x16 ahead of 16x1 under GEV at ~85%.
        from repro.dists import synthetic
        from repro.queueing import QueueingSystem

        service = synthetic("gev")
        theory_single = QueueingSystem(1, 16, service, seed=3).run(0.85, 60_000)
        theory_partitioned = QueueingSystem(16, 1, service, seed=3).run(0.85, 60_000)
        assert theory_single.p99 < theory_partitioned.p99

        arch_single = make_system("1x16", "synthetic-gev", seed=3).run_point(
            11.0, 8_000
        )
        arch_partitioned = make_system("16x1", "synthetic-gev", seed=3).run_point(
            11.0, 8_000
        )
        assert arch_single.p99 < arch_partitioned.p99


class TestMasstreeInterference:
    """§6.1/Fig 7b: scans wreck 16x1's get tail; 1x16 absorbs them."""

    def test_scan_interference_hits_partitioned_hardest(self):
        single = make_system("1x16", "masstree", seed=5).run_point(3.0, 6_000)
        partitioned = make_system("16x1", "masstree", seed=5).run_point(3.0, 6_000)
        # gets-only p99: partitioned queues gets behind scans.
        assert partitioned.p99 > 3 * single.p99

    def test_16x1_violates_get_slo_at_low_load(self):
        # Paper: "16x1 cannot meet the SLO even for the lowest arrival
        # rate of 2MRPS" (SLO = 12.5µs).
        partitioned = make_system("16x1", "masstree", seed=5).run_point(2.0, 6_000)
        assert partitioned.p99 > 12_500.0

    def test_1x16_meets_get_slo_at_moderate_load(self):
        single = make_system("1x16", "masstree", seed=5).run_point(3.0, 6_000)
        assert single.p99 < 12_500.0

    def test_execution_driven_masstree_runs(self):
        from repro.store import TimedKVStore

        store = TimedKVStore(num_keys=50_000, seed=1)
        system = RpcValetSystem(
            SingleQueue(),
            MasstreeWorkload(store=store),
            costs=MicrobenchCosts.lean(),
            seed=1,
        )
        result = system.run_point(offered_mrps=2.0, num_requests=2_000)
        assert result.completed == 2_000
        assert result.p99 > 0


class TestSoftwareCeiling:
    def test_software_saturates_at_lock_rate(self):
        # Dequeue ceiling ≈ 1/(handoff+critical) = 5 MRPS; offered 8
        # must achieve ≈ 5.
        software = make_system("sw-1x16", "synthetic-fixed", seed=1)
        result = software.run_point(offered_mrps=8.0, num_requests=10_000)
        assert result.point.achieved_throughput == pytest.approx(5.0, rel=0.1)

    def test_hardware_sustains_same_load(self):
        hardware = make_system("1x16", "synthetic-fixed", seed=1)
        result = hardware.run_point(offered_mrps=8.0, num_requests=10_000)
        assert result.point.achieved_throughput == pytest.approx(8.0, rel=0.1)


class TestConfigurationScaling:
    def test_64_core_chip_runs(self):
        config = ChipConfig(
            num_cores=64, mesh_rows=8, mesh_cols=8, num_backends=8
        )
        system = RpcValetSystem(
            SingleQueue(),
            SyntheticWorkload("exponential"),
            config=config,
            costs=MicrobenchCosts.paper_synthetic(),
            seed=1,
        )
        # 64 cores at S̄≈1.2µs → ~53 MRPS capacity; run at ~60%.
        result = system.run_point(offered_mrps=32.0, num_requests=10_000)
        assert result.completed == 10_000
        assert result.point.achieved_throughput == pytest.approx(32.0, rel=0.1)

    def test_4_core_chip_runs(self):
        config = ChipConfig(
            num_cores=4, mesh_rows=2, mesh_cols=2, num_backends=2
        )
        system = RpcValetSystem(
            SingleQueue(),
            SyntheticWorkload("fixed"),
            config=config,
            costs=MicrobenchCosts.paper_synthetic(),
            seed=1,
        )
        result = system.run_point(offered_mrps=2.0, num_requests=3_000)
        assert result.completed == 3_000


class TestSeedStability:
    def test_full_experiment_reproducible(self):
        from repro.experiments import run_fig2a

        first = run_fig2a(profile="smoke", seed=7)
        second = run_fig2a(profile="smoke", seed=7)
        assert first.data["high_load_p99"] == second.data["high_load_p99"]
