"""RngRegistry: reproducibility and stream independence."""

import numpy as np
import pytest

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        first = RngRegistry(seed=42).stream("arrivals").uniform(size=10)
        second = RngRegistry(seed=42).stream("arrivals").uniform(size=10)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        first = RngRegistry(seed=1).stream("arrivals").uniform(size=10)
        second = RngRegistry(seed=2).stream("arrivals").uniform(size=10)
        assert not np.array_equal(first, second)

    def test_different_names_differ(self):
        registry = RngRegistry(seed=1)
        first = registry.stream("a").uniform(size=10)
        second = registry.stream("b").uniform(size=10)
        assert not np.array_equal(first, second)

    def test_stream_cached(self):
        registry = RngRegistry(seed=0)
        assert registry.stream("x") is registry.stream("x")

    def test_common_random_numbers_across_configs(self):
        # Drawing from stream "service" is unaffected by whether some
        # other stream was consumed first — the property that makes A/B
        # config comparisons use common random numbers.
        lonely = RngRegistry(seed=9)
        service_only = lonely.stream("service").uniform(size=5)

        busy = RngRegistry(seed=9)
        busy.stream("arrivals").uniform(size=1000)
        service_after = busy.stream("service").uniform(size=5)
        np.testing.assert_array_equal(service_only, service_after)

    def test_spawn_independent(self):
        parent = RngRegistry(seed=3)
        child = parent.spawn("worker")
        parent_draw = parent.stream("x").uniform(size=5)
        child_draw = child.stream("x").uniform(size=5)
        assert not np.array_equal(parent_draw, child_draw)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="nope")
