"""QueueingSystem: the paper's Q×U models (§2.2)."""

import pytest

from repro.dists import Exponential, Fixed
from repro.experiments import unit_mean_service
from repro.queueing import PAPER_CONFIGS, QueueingSystem, composite_service


class TestConstruction:
    def test_paper_configs_cover_16_servers(self):
        for num_queues, servers in PAPER_CONFIGS:
            assert num_queues * servers == 16

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            QueueingSystem(0, 16, Exponential(1.0))

    def test_label(self):
        assert QueueingSystem(4, 4, Exponential(1.0)).label == "4x4"


class TestRun:
    def test_latency_normalized_to_mean_service(self):
        # At very low load there is no queueing: sojourn ≈ service, so
        # the normalized mean must be ≈ 1 regardless of the time unit.
        for mean in (1.0, 600.0):
            system = QueueingSystem(1, 16, Exponential(mean), seed=1)
            point = system.run(load=0.05, num_requests=30_000)
            assert point.summary.mean == pytest.approx(1.0, rel=0.05)

    def test_fixed_service_low_load_p99_is_one(self):
        system = QueueingSystem(1, 16, Fixed(1.0), seed=1)
        point = system.run(load=0.2, num_requests=30_000)
        assert point.p99 == pytest.approx(1.0, abs=1e-9)

    def test_single_queue_beats_partitioned(self):
        # The paper's central §2.2 result.
        service = Exponential(1.0)
        single = QueueingSystem(1, 16, service, seed=7).run(0.8, 100_000)
        partitioned = QueueingSystem(16, 1, service, seed=7).run(0.8, 100_000)
        assert single.p99 < partitioned.p99

    def test_full_ordering_matches_fig2a(self):
        service = Exponential(1.0)
        p99s = []
        for num_queues, servers in PAPER_CONFIGS:
            point = QueueingSystem(num_queues, servers, service, seed=3).run(
                0.85, 150_000
            )
            p99s.append(point.p99)
        # 1x16 < 2x8 < 4x4 < 8x2 < 16x1.
        assert p99s == sorted(p99s)

    def test_variance_ordering_matches_fig2bc(self):
        # TL_fixed < TL_uni < TL_exp < TL_gev at high load, both models.
        for num_queues, servers in ((1, 16), (16, 1)):
            p99s = [
                QueueingSystem(
                    num_queues, servers, unit_mean_service(kind), seed=5
                ).run(0.9, 150_000).p99
                for kind in ("fixed", "uniform", "exponential", "gev")
            ]
            assert p99s == sorted(p99s), (num_queues, servers, p99s)

    def test_higher_load_higher_tail(self):
        system = QueueingSystem(1, 16, Exponential(1.0), seed=2)
        low = system.run(0.3, 60_000).p99
        high = system.run(0.9, 60_000).p99
        assert high > low

    def test_invalid_load(self):
        system = QueueingSystem(1, 16, Exponential(1.0))
        with pytest.raises(ValueError):
            system.run(load=0.0)

    def test_invalid_requests(self):
        system = QueueingSystem(1, 16, Exponential(1.0))
        with pytest.raises(ValueError):
            system.run(load=0.5, num_requests=0)

    def test_reproducible(self):
        first = QueueingSystem(4, 4, Exponential(1.0), seed=9).run(0.7, 20_000)
        second = QueueingSystem(4, 4, Exponential(1.0), seed=9).run(0.7, 20_000)
        assert first.p99 == second.p99


class TestSweep:
    def test_sweep_sorted_and_labeled(self):
        system = QueueingSystem(2, 8, Exponential(1.0), seed=1)
        sweep = system.sweep([0.9, 0.3, 0.6], num_requests=20_000)
        assert sweep.label == "2x8"
        assert [point.offered_load for point in sweep.points] == [0.3, 0.6, 0.9]


class TestCompositeService:
    def test_mean_adds_fixed_part(self):
        service = composite_service(Exponential(300.0), 600.0)
        assert service.mean == pytest.approx(900.0)
        assert service.variance == pytest.approx(300.0**2)

    def test_zero_fixed_part_passthrough(self):
        inner = Exponential(1.0)
        assert composite_service(inner, 0.0) is inner

    def test_negative_fixed_rejected(self):
        with pytest.raises(ValueError):
            composite_service(Exponential(1.0), -5.0)
