"""MSER-5 warmup truncation and batch-means confidence intervals."""

import numpy as np
import pytest

from repro.metrics import BatchMeansResult, batch_means_ci, mser5_truncation
from repro.queueing import mm1_mean_sojourn, poisson_arrivals, sojourn_times


class TestMser5:
    def test_detects_transient_ramp(self):
        rng = np.random.default_rng(0)
        # 500 inflated warmup samples, then stationary noise.
        warmup = 50.0 + rng.normal(0, 1.0, 500)
        steady = rng.normal(0, 1.0, 5_000)
        series = np.concatenate([warmup, steady])
        cut = mser5_truncation(series)
        assert 400 <= cut <= 1_000

    def test_stationary_series_keeps_everything(self):
        rng = np.random.default_rng(1)
        series = rng.normal(10.0, 1.0, 5_000)
        cut = mser5_truncation(series)
        # No transient: truncation is (near) zero.
        assert cut <= 0.1 * series.size

    def test_short_series_returns_zero(self):
        assert mser5_truncation(np.arange(10.0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            mser5_truncation(np.arange(100.0), batch_size=0)
        with pytest.raises(ValueError):
            mser5_truncation(np.zeros((10, 10)))

    def test_on_real_queueing_output(self):
        # An M/M/1 started empty: the first sojourns are biased low;
        # MSER should trim some prefix, and the trimmed mean should be
        # closer to the analytic value than the untrimmed mean.
        rng = np.random.default_rng(2)
        lam, mu, n = 0.9, 1.0, 40_000
        arrivals = poisson_arrivals(rng, lam, n)
        services = rng.exponential(1.0 / mu, n)
        sojourns = sojourn_times(arrivals, services, 1)
        cut = mser5_truncation(sojourns)
        analytic = mm1_mean_sojourn(lam, mu)
        trimmed_error = abs(sojourns[cut:].mean() - analytic)
        raw_error = abs(sojourns.mean() - analytic)
        assert trimmed_error <= raw_error + 0.05 * analytic


class TestBatchMeans:
    def test_iid_coverage(self):
        # For iid data the CI must cover the true mean ~95% of the time.
        rng = np.random.default_rng(3)
        covered = 0
        trials = 300
        for _ in range(trials):
            data = rng.exponential(2.0, 2_000)
            result = batch_means_ci(data)
            if result.contains(2.0):
                covered += 1
        assert covered / trials > 0.90

    def test_wider_than_naive_for_correlated_data(self):
        # Queueing sojourns are positively autocorrelated: the batch
        # CI must be wider than the (invalid) iid CI.
        rng = np.random.default_rng(4)
        lam, n = 0.9, 60_000
        arrivals = poisson_arrivals(rng, lam, n)
        services = rng.exponential(1.0, n)
        sojourns = sojourn_times(arrivals, services, 1, warmup_fraction=0.2)
        result = batch_means_ci(sojourns)
        naive_half_width = 1.96 * sojourns.std(ddof=1) / np.sqrt(sojourns.size)
        assert result.half_width > 2 * naive_half_width

    def test_interval_and_fields(self):
        data = np.arange(100.0)
        result = batch_means_ci(data, num_batches=10)
        assert isinstance(result, BatchMeansResult)
        low, high = result.interval
        assert low < result.mean < high
        assert result.num_batches == 10
        assert result.batch_size == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_ci(np.arange(100.0), num_batches=1)
        with pytest.raises(ValueError):
            batch_means_ci(np.arange(10.0), num_batches=20)
