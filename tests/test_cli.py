"""The experiments command-line interface."""


import pytest

from repro.experiments.cli import EXPERIMENTS, collect_sweeps, main
from repro.metrics import LatencySummary, SweepPoint, SweepResult


def make_sweep(label="s"):
    summary = LatencySummary(1, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    return SweepResult(label, [SweepPoint(1.0, 1.0, summary)])


class TestCollectSweeps:
    def test_finds_nested_sweeps(self):
        data = {
            "sweeps": {"a": make_sweep("a"), "b": make_sweep("b")},
            "nested": {"deep": {"c": make_sweep("c")}},
            "scalar": 1.0,
        }
        labels = sorted(sweep.label for sweep in collect_sweeps(data))
        assert labels == ["a", "b", "c"]

    def test_empty(self):
        assert collect_sweeps({"x": 1}) == []


class TestMain:
    def test_runs_fig6(self, capsys):
        assert main(["fig6", "--profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "herd" in out

    def test_chart_flag(self, capsys):
        assert main(["fig2a", "--profile", "smoke", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "p99 vs achieved throughput" in out
        assert "log scale" in out

    def test_csv_flag(self, tmp_path, capsys):
        assert main(
            ["fig2a", "--profile", "smoke", "--csv", str(tmp_path)]
        ) == 0
        csv_path = tmp_path / "fig2a.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("label,offered_load")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_seed_flag_changes_results(self, capsys):
        main(["fig2a", "--profile", "smoke", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2a", "--profile", "smoke", "--seed", "2"])
        second = capsys.readouterr().out
        # Same structure, different sampled values.
        assert first.splitlines()[0] == second.splitlines()[0]
        assert first != second

    def test_registry_complete(self):
        for required in (
            "fig2a", "fig2b", "fig2c", "fig6", "fig7a", "fig7b", "fig7c",
            "fig8", "fig9", "headline",
        ):
            assert required in EXPERIMENTS


class TestPersistence:
    def _result(self):
        from repro.experiments import run_fig2a

        return run_fig2a(profile="smoke", seed=0)

    def test_save_and_load_roundtrip(self, tmp_path):
        from repro.experiments import load_snapshot, result_to_dict, save_result

        result = self._result()
        path = save_result(result, tmp_path)
        snapshot = load_snapshot(path)
        assert snapshot == result_to_dict(result)
        assert snapshot["experiment_id"] == "fig2a"
        assert len(snapshot["sweeps"]) == 5  # five QxU configs

    def test_compare_identical_is_clean(self, tmp_path):
        from repro.experiments import compare_snapshots, result_to_dict

        snapshot = result_to_dict(self._result())
        assert compare_snapshots(snapshot, snapshot) == []

    def test_compare_detects_regression(self):
        from repro.experiments import compare_snapshots, result_to_dict

        baseline = result_to_dict(self._result())
        import copy

        candidate = copy.deepcopy(baseline)
        candidate["sweeps"][0]["points"][0]["p99"] *= 2.0
        report = compare_snapshots(baseline, candidate)
        assert len(report) == 1
        assert "+100.0%" in report[0]

    def test_compare_mismatched_experiments_rejected(self):
        from repro.experiments import compare_snapshots, result_to_dict

        baseline = result_to_dict(self._result())
        import copy

        other = copy.deepcopy(baseline)
        other["experiment_id"] = "fig2b"
        with pytest.raises(ValueError, match="different experiments"):
            compare_snapshots(baseline, other)

    def test_unknown_schema_rejected(self, tmp_path):
        import json

        from repro.experiments import load_snapshot

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_cli_save_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(
            ["fig2a", "--profile", "smoke", "--save", str(tmp_path)]
        ) == 0
        assert (tmp_path / "fig2a.json").exists()


class TestSensitivityDriver:
    def test_core_costs_dominate(self):
        from repro.experiments import run_sensitivity

        result = run_sensitivity(profile="smoke", seed=0)
        entries = result.data["entries"]
        # Ranked by swing: the top constant must be a core-side cost
        # (it moves S̄); pure NI latencies are second-order.
        assert entries[0]["param"] in ("send_issue_ns", "poll_detect_ns")
        ni_constants = {
            "dispatch_ns", "cqe_write_ns", "backend_fixed_ns",
            "backend_per_packet_ns", "mesh_hop_cycles",
        }
        baseline = result.data["baseline_p99"]
        for entry in entries:
            if entry["param"] in ni_constants:
                assert entry["swing_ns"] / baseline < 0.25, entry["param"]
