"""RpcValetSystem: the public API's behaviour and invariants."""

import pytest

from repro import (
    MicrobenchCosts,
    Partitioned,
    RpcValetSystem,
    SingleQueue,
    SoftwareSingleQueue,
    SyntheticWorkload,
    make_scheme,
    make_system,
    make_workload,
)


class TestPresets:
    def test_make_scheme_labels(self):
        assert make_scheme("1x16").num_groups == 1
        assert make_scheme("4x4").num_groups == 4
        assert make_scheme("2x8").num_groups == 2
        assert make_scheme("8x2").num_groups == 8
        assert isinstance(make_scheme("sw-1x16"), SoftwareSingleQueue)
        assert isinstance(make_scheme("16x1"), Partitioned)
        with pytest.raises(ValueError):
            make_scheme("3x5")

    def test_make_workload(self):
        assert make_workload("herd").name == "herd"
        assert make_workload("masstree").name == "masstree"
        assert make_workload("synthetic-gev").kind == "gev"
        with pytest.raises(ValueError):
            make_workload("sqlite")

    def test_make_system_cost_defaults(self):
        synthetic = make_system("1x16", "synthetic-fixed")
        assert synthetic.costs.total_ns == pytest.approx(600.0)
        herd = make_system("1x16", "herd")
        assert herd.costs.total_ns == pytest.approx(220.0)


class TestRunPoint:
    def test_all_submitted_complete(self):
        system = make_system("1x16", "herd", seed=1)
        result = system.run_point(offered_mrps=10.0, num_requests=3_000)
        assert result.completed == 3_000

    def test_measured_service_time_matches_expectation(self):
        system = make_system("1x16", "herd", seed=1)
        result = system.run_point(offered_mrps=5.0, num_requests=3_000)
        # S̄ ≈ 330ns processing + 220ns overhead ≈ 550ns (paper's value).
        assert result.mean_service_ns == pytest.approx(
            system.expected_service_ns, rel=0.05
        )
        assert result.mean_service_ns == pytest.approx(550.0, rel=0.05)

    def test_achieved_tracks_offered_below_saturation(self):
        system = make_system("1x16", "herd", seed=1)
        result = system.run_point(offered_mrps=10.0, num_requests=10_000)
        assert result.point.achieved_throughput == pytest.approx(10.0, rel=0.1)

    def test_software_overhead_increases_service_time(self):
        hardware = make_system("1x16", "synthetic-fixed", seed=1)
        software = make_system("sw-1x16", "synthetic-fixed", seed=1)
        hw_service = hardware.run_point(2.0, 2_000).mean_service_ns
        sw_service = software.run_point(2.0, 2_000).mean_service_ns
        # The MCS critical section adds ~50ns of core time per request.
        assert sw_service - hw_service == pytest.approx(50.0, abs=5.0)

    def test_latency_grows_with_load(self):
        system = make_system("1x16", "synthetic-exponential", seed=2)
        low = system.run_point(3.0, 4_000)
        high = system.run_point(12.5, 4_000)
        assert high.p99 > low.p99

    def test_reproducibility(self):
        first = make_system("4x4", "herd", seed=5).run_point(10.0, 3_000)
        second = make_system("4x4", "herd", seed=5).run_point(10.0, 3_000)
        assert first.p99 == second.p99
        assert first.point.achieved_throughput == second.point.achieved_throughput

    def test_different_seeds_differ(self):
        first = make_system("4x4", "herd", seed=5).run_point(10.0, 3_000)
        second = make_system("4x4", "herd", seed=6).run_point(10.0, 3_000)
        assert first.p99 != second.p99

    def test_invalid_args(self):
        system = make_system("1x16", "herd")
        with pytest.raises(ValueError):
            system.run_point(0.0)
        with pytest.raises(ValueError):
            system.run_point(1.0, num_requests=0)

    def test_masstree_slo_class_is_gets(self):
        system = make_system("1x16", "masstree", seed=3)
        result = system.run_point(offered_mrps=2.0, num_requests=4_000)
        # Summary covers gets only: its mean must be far below a scan.
        assert result.point.summary.mean < 30_000.0
        assert result.completed == 4_000


class TestSweep:
    def test_sweep_shape(self):
        system = make_system("1x16", "herd", seed=1)
        sweep = system.sweep([5.0, 15.0], num_requests=2_000)
        assert len(sweep) == 2
        assert sweep.label == "1xN"
        assert sweep.points[0].offered_load == 5.0


class TestPaperOrderings:
    """The paper's qualitative results at moderate scale."""

    LOAD = 25.0  # MRPS, ~86% of HERD capacity
    N = 10_000

    def p99(self, scheme):
        return make_system(scheme, "herd", seed=4).run_point(self.LOAD, self.N).p99

    def test_1x16_beats_4x4_beats_16x1(self):
        single = self.p99("1x16")
        grouped = self.p99("4x4")
        partitioned = self.p99("16x1")
        assert single < grouped < partitioned

    def test_single_queue_emulation_vs_intermediate(self):
        # 2x8 and 8x2 sit between 1x16 and 16x1.
        single = self.p99("1x16")
        two = self.p99("2x8")
        eight = self.p99("8x2")
        partitioned = self.p99("16x1")
        assert single <= two <= eight * 1.1  # allow small noise
        assert eight < partitioned

    def test_outstanding_limit_one_vs_two(self):
        system_one = RpcValetSystem(
            SingleQueue(outstanding_limit=1),
            SyntheticWorkload("fixed"),
            costs=MicrobenchCosts.paper_synthetic(),
            seed=4,
        )
        system_two = RpcValetSystem(
            SingleQueue(outstanding_limit=2),
            SyntheticWorkload("fixed"),
            costs=MicrobenchCosts.paper_synthetic(),
            seed=4,
        )
        # Both near saturation; threshold 2 must not be dramatically
        # worse (paper: differences are marginal).
        one = system_one.run_point(12.5, self.N)
        two = system_two.run_point(12.5, self.N)
        assert two.p99 < 3 * one.p99
        assert one.p99 < 3 * two.p99
