"""Property-based tests (hypothesis) on the distribution layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dists import (
    Exponential,
    Fixed,
    GEV,
    Gamma,
    Mixture,
    Scaled,
    Shifted,
    Uniform,
)

positive = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)
small_positive = st.floats(min_value=0.01, max_value=1e3, allow_nan=False)


@st.composite
def distributions(draw):
    """A random distribution from the families used by the paper."""
    kind = draw(st.sampled_from(["fixed", "uniform", "exponential", "gamma", "gev"]))
    if kind == "fixed":
        return Fixed(draw(positive))
    if kind == "uniform":
        low = draw(st.floats(min_value=0.0, max_value=1e3))
        width = draw(positive)
        return Uniform(low, low + width)
    if kind == "exponential":
        return Exponential(draw(positive))
    if kind == "gamma":
        return Gamma(draw(small_positive), draw(small_positive))
    return GEV(
        location=draw(st.floats(min_value=10.0, max_value=1e3)),
        scale=draw(small_positive),
        shape=draw(st.floats(min_value=0.05, max_value=0.45)),
    )


@given(distributions(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_samples_finite_and_match_scalar_path(dist, seed):
    """sample() and sample_array() draw from the same distribution."""
    array = dist.sample_array(np.random.default_rng(seed), 64)
    assert array.shape == (64,)
    assert np.all(np.isfinite(array))
    scalar = dist.sample(np.random.default_rng(seed))
    assert np.isfinite(scalar)


@given(distributions())
@settings(max_examples=150, deadline=None)
def test_variance_nonnegative_and_std_consistent(dist):
    variance = dist.variance
    assert variance >= 0  # may be inf, never negative or NaN
    if np.isfinite(variance):
        np.testing.assert_allclose(dist.std**2, variance, rtol=1e-9)


@given(distributions(), positive)
@settings(max_examples=100, deadline=None)
def test_shift_adds_to_mean_preserves_variance(dist, offset):
    shifted = Shifted(dist, offset)
    np.testing.assert_allclose(shifted.mean, dist.mean + offset, rtol=1e-9)
    np.testing.assert_allclose(shifted.variance, dist.variance, rtol=1e-9)


@given(distributions(), st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_scale_multiplies_moments(dist, factor):
    scaled = Scaled(dist, factor)
    np.testing.assert_allclose(scaled.mean, dist.mean * factor, rtol=1e-9)
    if np.isfinite(dist.variance):
        np.testing.assert_allclose(
            scaled.variance, dist.variance * factor**2, rtol=1e-9
        )


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=10.0), positive),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=100, deadline=None)
def test_mixture_mean_is_convex_combination(weighted_means):
    components = [(weight, Fixed(value)) for weight, value in weighted_means]
    mix = Mixture(components)
    values = np.array([value for _w, value in weighted_means])
    assert values.min() - 1e-9 <= mix.mean <= values.max() + 1e-9


@given(
    st.floats(min_value=10.0, max_value=1e3),
    st.floats(min_value=1.0, max_value=100.0),
    st.floats(min_value=0.05, max_value=0.9),
    st.floats(min_value=1e-4, max_value=1 - 1e-4),
)
@settings(max_examples=200, deadline=None)
def test_gev_quantile_cdf_inverse(location, scale, shape, u):
    dist = GEV(location, scale, shape)
    x = dist._quantile(np.array([u]))
    np.testing.assert_allclose(dist.cdf(x)[0], u, rtol=1e-7, atol=1e-9)


@given(
    st.floats(min_value=0.0, max_value=1e3),
    st.floats(min_value=0.1, max_value=1e3),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_uniform_samples_stay_in_support(low, width, seed):
    dist = Uniform(low, low + width)
    samples = dist.sample_array(np.random.default_rng(seed), 32)
    assert np.all(samples >= low)
    assert np.all(samples <= low + width)
