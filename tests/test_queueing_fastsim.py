"""fastsim: exact FIFO multi-server simulation, validated three ways.

1. Hand-computed toy traces;
2. Exact agreement with the slow kernel-based implementation;
3. Convergence to analytic M/M/1, M/M/c, and M/G/1 results.
"""

import numpy as np
import pytest

from repro.queueing import (
    kernel_sojourn_times,
    mg1_mean_sojourn,
    mm1_mean_sojourn,
    mm1_sojourn_percentile,
    mmc_mean_sojourn,
    poisson_arrivals,
    simulate_fifo_queue,
    sojourn_times,
)


class TestToyTraces:
    def test_single_server_no_contention(self):
        arrivals = np.array([0.0, 10.0, 20.0])
        services = np.array([1.0, 2.0, 3.0])
        departures = simulate_fifo_queue(arrivals, services, 1)
        np.testing.assert_allclose(departures, [1.0, 12.0, 23.0])

    def test_single_server_queueing(self):
        arrivals = np.array([0.0, 1.0, 2.0])
        services = np.array([5.0, 5.0, 5.0])
        departures = simulate_fifo_queue(arrivals, services, 1)
        np.testing.assert_allclose(departures, [5.0, 10.0, 15.0])

    def test_two_servers_parallel(self):
        arrivals = np.array([0.0, 0.0, 0.0])
        services = np.array([5.0, 5.0, 5.0])
        departures = simulate_fifo_queue(arrivals, services, 2)
        np.testing.assert_allclose(sorted(departures), [5.0, 5.0, 10.0])

    def test_fifo_order_even_with_short_job_behind_long(self):
        # FIFO: the 0.1-long job at t=1 waits for the 10-long job.
        arrivals = np.array([0.0, 1.0])
        services = np.array([10.0, 0.1])
        departures = simulate_fifo_queue(arrivals, services, 1)
        np.testing.assert_allclose(departures, [10.0, 10.1])

    def test_sojourn_warmup_trim(self):
        arrivals = np.array([0.0, 1.0, 2.0, 3.0])
        services = np.ones(4)
        sojourns = sojourn_times(arrivals, services, 1, warmup_fraction=0.5)
        assert sojourns.size == 2


class TestValidation:
    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            simulate_fifo_queue(np.zeros(3), np.zeros(2), 1)

    def test_decreasing_arrivals(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            simulate_fifo_queue(np.array([1.0, 0.0]), np.zeros(2), 1)

    def test_negative_service(self):
        with pytest.raises(ValueError):
            simulate_fifo_queue(np.zeros(1), np.array([-1.0]), 1)

    def test_bad_server_count(self):
        with pytest.raises(ValueError):
            simulate_fifo_queue(np.zeros(1), np.zeros(1), 0)

    def test_bad_warmup(self):
        with pytest.raises(ValueError):
            sojourn_times(np.zeros(1), np.zeros(1), 1, warmup_fraction=1.0)


class TestAgainstKernel:
    @pytest.mark.parametrize("num_queues,servers", [(1, 1), (1, 4), (4, 1), (4, 4)])
    def test_exact_agreement(self, num_queues, servers):
        rng = np.random.default_rng(3)
        n = 2000
        arrivals = poisson_arrivals(rng, rate=servers * num_queues * 0.8, count=n)
        services = rng.exponential(1.0, n)
        queue_ids = rng.integers(0, num_queues, n)

        kernel = kernel_sojourn_times(arrivals, services, queue_ids, num_queues, servers)
        fast = np.empty(n)
        for queue_id in range(num_queues):
            mask = queue_ids == queue_id
            fast[mask] = (
                simulate_fifo_queue(arrivals[mask], services[mask], servers)
                - arrivals[mask]
            )
        np.testing.assert_allclose(kernel, fast, rtol=1e-12)


class TestAgainstAnalytic:
    N = 400_000

    def test_mm1_mean(self):
        rng = np.random.default_rng(10)
        lam, mu = 0.7, 1.0
        arrivals = poisson_arrivals(rng, lam, self.N)
        services = rng.exponential(1.0 / mu, self.N)
        sojourns = sojourn_times(arrivals, services, 1, warmup_fraction=0.1)
        assert sojourns.mean() == pytest.approx(
            mm1_mean_sojourn(lam, mu), rel=0.05
        )

    def test_mm1_p99(self):
        rng = np.random.default_rng(11)
        lam, mu = 0.6, 1.0
        arrivals = poisson_arrivals(rng, lam, self.N)
        services = rng.exponential(1.0 / mu, self.N)
        sojourns = sojourn_times(arrivals, services, 1, warmup_fraction=0.1)
        assert np.percentile(sojourns, 99) == pytest.approx(
            mm1_sojourn_percentile(lam, mu, 0.99), rel=0.05
        )

    def test_mmc_mean(self):
        rng = np.random.default_rng(12)
        c, lam, mu = 16, 12.8, 1.0
        arrivals = poisson_arrivals(rng, lam, self.N)
        services = rng.exponential(1.0 / mu, self.N)
        sojourns = sojourn_times(arrivals, services, c, warmup_fraction=0.1)
        assert sojourns.mean() == pytest.approx(
            mmc_mean_sojourn(c, lam, mu), rel=0.05
        )

    def test_mg1_mean_deterministic_service(self):
        rng = np.random.default_rng(13)
        lam, service = 0.8, 1.0
        arrivals = poisson_arrivals(rng, lam, self.N)
        services = np.full(self.N, service)
        sojourns = sojourn_times(arrivals, services, 1, warmup_fraction=0.1)
        analytic = mg1_mean_sojourn(lam, service, service**2)
        assert sojourns.mean() == pytest.approx(analytic, rel=0.05)

    def test_mg1_mean_uniform_service(self):
        rng = np.random.default_rng(14)
        lam = 0.75
        arrivals = poisson_arrivals(rng, lam, self.N)
        services = rng.uniform(0.0, 2.0, self.N)
        # E[S]=1, E[S^2]=4/3 for U(0,2).
        sojourns = sojourn_times(arrivals, services, 1, warmup_fraction=0.1)
        analytic = mg1_mean_sojourn(lam, 1.0, 4.0 / 3.0)
        assert sojourns.mean() == pytest.approx(analytic, rel=0.05)


class TestPoissonArrivals:
    def test_rate(self):
        rng = np.random.default_rng(15)
        arrivals = poisson_arrivals(rng, rate=2.0, count=100_000)
        assert np.all(np.diff(arrivals) >= 0)
        # Mean gap = 1/rate.
        assert np.diff(arrivals).mean() == pytest.approx(0.5, rel=0.02)

    def test_start_offset(self):
        rng = np.random.default_rng(16)
        arrivals = poisson_arrivals(rng, rate=1.0, count=10, start=100.0)
        assert arrivals.min() >= 100.0

    def test_invalid(self):
        rng = np.random.default_rng(17)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, rate=0.0, count=1)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, rate=1.0, count=-1)
