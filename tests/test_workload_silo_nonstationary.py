"""Silo/TPC-C workload and nonstationary arrival generation."""

import numpy as np
import pytest

from repro import MicrobenchCosts, RpcValetSystem, SingleQueue
from repro.queueing import (
    nonhomogeneous_poisson,
    simulate_fifo_queue,
    sinusoidal_rate,
    square_wave_rate,
)
from repro.workloads import SiloTpccWorkload, TPCC_MIX

RNG = lambda: np.random.default_rng(17)  # noqa: E731


class TestSiloTpcc:
    def test_mix_sums_to_one(self):
        assert sum(TPCC_MIX.values()) == pytest.approx(1.0)

    def test_overall_mean_is_papers_33us(self):
        workload = SiloTpccWorkload()
        assert workload.mean_processing_ns == pytest.approx(33_000.0)
        rng = RNG()
        samples = [workload.sample(rng)[0] for _ in range(60_000)]
        assert np.mean(samples) == pytest.approx(33_000.0, rel=0.03)

    def test_transaction_mix_fractions(self):
        workload = SiloTpccWorkload()
        rng = RNG()
        labels = [workload.sample(rng)[1] for _ in range(40_000)]
        for txn, fraction in TPCC_MIX.items():
            observed = labels.count(txn) / len(labels)
            assert observed == pytest.approx(fraction, abs=0.01), txn

    def test_type_means_ordered_by_cost(self):
        workload = SiloTpccWorkload()
        assert workload.type_mean_ns("payment") < workload.type_mean_ns(
            "new_order"
        ) < workload.type_mean_ns("delivery")
        with pytest.raises(ValueError):
            workload.type_mean_ns("checkout")

    def test_runs_on_the_simulator(self):
        # 16 cores at 33µs S̄ → capacity ≈ 0.48 MRPS; run at ~70%.
        workload = SiloTpccWorkload()
        system = RpcValetSystem(
            SingleQueue(), workload, costs=MicrobenchCosts.lean(), seed=3
        )
        result = system.run_point(offered_mrps=0.34, num_requests=5_000)
        assert result.completed == 5_000
        assert result.mean_service_ns == pytest.approx(33_220.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            SiloTpccWorkload(mean_ns=0.0)
        with pytest.raises(ValueError):
            SiloTpccWorkload(cv2=0.0)


class TestNonstationaryArrivals:
    def test_constant_rate_matches_homogeneous(self):
        rng = RNG()
        times = nonhomogeneous_poisson(rng, lambda t: 5.0, 5.0, horizon=10_000.0)
        rate = times.size / 10_000.0
        assert rate == pytest.approx(5.0, rel=0.03)
        assert np.all(np.diff(times) >= 0)

    def test_square_wave_concentrates_arrivals(self):
        rate_fn, rate_max = square_wave_rate(
            base_rate=1.0, burst_rate=20.0, period=100.0, burst_fraction=0.1
        )
        rng = RNG()
        times = nonhomogeneous_poisson(rng, rate_fn, rate_max, horizon=20_000.0)
        in_burst = np.mod(times, 100.0) < 10.0
        # Burst windows are 10% of time but carry ~2/3 of arrivals
        # (20 / (20*0.1 + 1*0.9) ≈ 0.69).
        assert in_burst.mean() == pytest.approx(0.69, abs=0.05)

    def test_sinusoidal_rate_bounds(self):
        rate_fn, rate_max = sinusoidal_rate(10.0, 5.0, period=50.0)
        ts = np.linspace(0, 100, 1000)
        values = np.array([rate_fn(t) for t in ts])
        assert values.min() >= 5.0 - 1e-9
        assert values.max() <= rate_max + 1e-9

    def test_subsaturating_bursts_widen_the_16x1_gap(self):
        # Bursts that stay below system capacity (0.5 base / 0.95 burst)
        # are absorbed by the single queue but overload 16x1's unlucky
        # queues transiently: the p99 gap widens vs stationary load.
        # (Bursts far past capacity compress the *relative* gap instead
        # — both systems then just accumulate the same backlog.)
        rng = np.random.default_rng(3)
        horizon = 60_000.0
        rate_fn, rate_max = square_wave_rate(
            base_rate=0.5 * 16, burst_rate=0.95 * 16, period=400.0,
            burst_fraction=0.25,
        )
        bursty = nonhomogeneous_poisson(rng, rate_fn, rate_max, horizon)
        services = rng.exponential(1.0, bursty.size)

        def gap(arrivals, svc):
            spray = np.random.default_rng(4).integers(0, 16, arrivals.size)
            partitioned = np.empty(arrivals.size)
            for queue in range(16):
                mask = spray == queue
                partitioned[mask] = (
                    simulate_fifo_queue(arrivals[mask], svc[mask], 1)
                    - arrivals[mask]
                )
            single = simulate_fifo_queue(arrivals, svc, 16) - arrivals
            return np.percentile(partitioned, 99) / np.percentile(single, 99)

        mean_rate = bursty.size / horizon
        gaps_stationary = rng.exponential(1.0 / mean_rate, bursty.size)
        stationary = np.cumsum(gaps_stationary)
        stationary_gap = gap(stationary, services)
        bursty_gap = gap(bursty, services)
        assert bursty_gap > 1.3 * stationary_gap

    def test_validation(self):
        rng = RNG()
        with pytest.raises(ValueError):
            nonhomogeneous_poisson(rng, lambda t: 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            nonhomogeneous_poisson(rng, lambda t: 1.0, 1.0, 0.0)
        with pytest.raises(ValueError, match="outside"):
            nonhomogeneous_poisson(rng, lambda t: 5.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            square_wave_rate(2.0, 1.0, 10.0, 0.5)
        with pytest.raises(ValueError):
            sinusoidal_rate(1.0, 2.0, 10.0)
