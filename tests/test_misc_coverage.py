"""Edge cases across modules that the main suites don't reach."""

import pytest

from repro.arch import Chip, ChipConfig
from repro.balancing import SingleQueue, SoftwareSingleQueue
from repro.experiments.common import ExperimentResult
from repro.sim import Environment, Interrupt, RngRegistry, Store
from repro.workloads import MicrobenchCosts, MicrobenchProgram


class TestKernelEdges:
    def test_interrupt_while_blocked_on_store(self):
        env = Environment()
        store = Store(env)
        outcomes = []

        def consumer():
            try:
                yield store.get()
            except Interrupt as interrupt:
                outcomes.append(("interrupted", interrupt.cause))
                return
            outcomes.append(("got",))

        process = env.process(consumer())

        def killer():
            yield env.timeout(5)
            process.interrupt("shutdown")

        env.process(killer())
        env.run()
        assert outcomes == [("interrupted", "shutdown")]
        # The interrupted consumer detached: a later put stays stored.
        store.put("orphan")
        env.run()
        assert store.items == ["orphan"]

    def test_active_process_visible_during_execution(self):
        env = Environment()
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(1)

        process = env.process(proc())
        env.run()
        assert seen == [process]
        assert env.active_process is None

    def test_store_getter_priority_over_late_putter(self):
        env = Environment()
        store = Store(env)
        order = []

        def consumer(name):
            item = yield store.get()
            order.append((name, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1)
            yield store.put("a")
            yield store.put("b")

        env.process(producer())
        env.run()
        assert order == [("first", "a"), ("second", "b")]


class TestDispatcherDelays:
    def build(self, scheme):
        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        scheme.install(chip, RngRegistry(0).stream("dispatch"))
        return chip

    def test_software_dispatcher_has_memory_latencies(self):
        chip = self.build(SoftwareSingleQueue())
        dispatcher = chip.dispatchers[0]
        # The software queue lives in memory: no mesh indirection, and
        # delivery costs one LLC access.
        assert dispatcher.completion_forward_delay_ns(0) == 0.0
        assert dispatcher.replenish_delay_ns(5) == 0.0
        assert dispatcher.delivery_delay_ns(5) == pytest.approx(
            chip.config.llc_latency_ns
        )

    def test_hardware_dispatcher_mesh_latencies(self):
        chip = self.build(SingleQueue())
        dispatcher = chip.dispatchers[0]
        assert dispatcher.home_backend_id == 0
        # Forwarding from its own backend is free; from others it isn't.
        assert dispatcher.completion_forward_delay_ns(0) == 0.0
        assert dispatcher.completion_forward_delay_ns(3) > 0.0
        assert dispatcher.delivery_delay_ns(15) > dispatcher.delivery_delay_ns(0)


class TestExperimentResult:
    def test_table_includes_findings(self):
        result = ExperimentResult(
            "exp-x", "A title", tables=["row-data"], findings=["insight"]
        )
        text = result.table()
        assert "== exp-x: A title ==" in text
        assert "row-data" in text
        assert "- insight" in text

    def test_table_without_findings(self):
        result = ExperimentResult("exp-y", "T", tables=["t"])
        assert "Findings" not in result.table()


class TestPresetsEdges:
    def test_make_system_explicit_costs_override_defaults(self):
        from repro.core import make_system

        system = make_system(
            "1x16", "synthetic-fixed", costs=MicrobenchCosts.lean()
        )
        # Explicit costs win over the synthetic default.
        assert system.costs.total_ns == pytest.approx(220.0)

    def test_scheme_names_constant_matches_factory(self):
        from repro.core import SCHEME_NAMES, make_scheme

        for name in SCHEME_NAMES:
            assert make_scheme(name) is not None


class TestAbandonSemantics:
    """Interrupted waiters must withdraw their pending claims."""

    def test_interrupted_putter_withdraws(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put("filler")

        def blocked_producer():
            yield store.put("blocked-item")

        producer = env.process(blocked_producer())

        def killer():
            yield env.timeout(1)
            producer.interrupt()

        env.process(killer())
        with pytest.raises(Interrupt):
            env.run(until=producer)
        # The withdrawn put must not land when space frees up.
        assert store.try_get() == "filler"
        env.run()
        assert store.items == []

    def test_interrupted_resource_waiter_loses_place(self):
        from repro.sim import Resource

        env = Environment()
        resource = Resource(env, capacity=1)
        grants = []

        def holder():
            with resource.request() as req:
                yield req
                yield env.timeout(10)

        def waiter(name):
            with resource.request() as req:
                try:
                    yield req
                except Interrupt:
                    return
                grants.append(name)

        env.process(holder())
        victim = env.process(waiter("victim"))
        env.process(waiter("survivor"))

        def killer():
            yield env.timeout(1)
            victim.interrupt()

        env.process(killer())
        env.run()
        # The interrupted waiter never got the resource; the survivor did.
        assert grants == ["survivor"]
        assert resource.count == 0
