"""Mixture, Empirical, and HistogramDistribution."""

import numpy as np
import pytest

from repro.dists import (
    Empirical,
    Exponential,
    Fixed,
    HistogramDistribution,
    Mixture,
    Uniform,
)

RNG = lambda: np.random.default_rng(5)  # noqa: E731


class TestMixture:
    def make(self):
        return Mixture([(0.99, Fixed(1000.0)), (0.01, Uniform(60_000.0, 120_000.0))])

    def test_mean_is_weighted(self):
        mix = self.make()
        assert mix.mean == pytest.approx(0.99 * 1000.0 + 0.01 * 90_000.0)

    def test_variance_law_of_total_variance(self):
        mix = Mixture([(0.5, Fixed(0.0)), (0.5, Fixed(10.0))])
        assert mix.mean == pytest.approx(5.0)
        assert mix.variance == pytest.approx(25.0)

    def test_weights_normalized(self):
        mix = Mixture([(2.0, Fixed(1.0)), (2.0, Fixed(3.0))])
        np.testing.assert_allclose(mix.weights, [0.5, 0.5])

    def test_sample_with_component(self):
        mix = self.make()
        counts = [0, 0]
        rng = RNG()
        for _ in range(10_000):
            value, component = mix.sample_with_component(rng)
            counts[component] += 1
            if component == 0:
                assert value == 1000.0
            else:
                assert 60_000.0 <= value <= 120_000.0
        assert counts[1] / sum(counts) == pytest.approx(0.01, abs=0.005)

    def test_sample_array_with_components(self):
        mix = self.make()
        values, components = mix.sample_array_with_components(RNG(), 50_000)
        assert values.shape == components.shape == (50_000,)
        scans = values[components == 1]
        assert scans.min() >= 60_000.0
        assert values.mean() == pytest.approx(mix.mean, rel=0.05)

    def test_pdf_is_weighted_sum(self):
        mix = Mixture([(0.5, Exponential(1.0)), (0.5, Exponential(2.0))])
        xs = np.linspace(0, 10, 101)
        expected = 0.5 * Exponential(1.0).pdf(xs) + 0.5 * Exponential(2.0).pdf(xs)
        np.testing.assert_allclose(mix.pdf(xs), expected)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Mixture([])
        with pytest.raises(ValueError):
            Mixture([(0.0, Fixed(1.0))])


class TestEmpirical:
    def test_resamples_only_observed_values(self):
        dist = Empirical([1.0, 2.0, 3.0])
        samples = dist.sample_array(RNG(), 1000)
        assert set(np.unique(samples)) <= {1.0, 2.0, 3.0}

    def test_moments_match_data(self):
        data = [10.0, 20.0, 30.0, 40.0]
        dist = Empirical(data)
        assert dist.mean == pytest.approx(np.mean(data))
        assert dist.variance == pytest.approx(np.var(data))

    def test_percentile(self):
        dist = Empirical(list(range(101)))
        assert dist.percentile(99) == pytest.approx(99.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([-1.0])


class TestHistogram:
    def make(self):
        return HistogramDistribution(
            counts=[10, 30, 10], bin_edges=[0.0, 100.0, 200.0, 300.0]
        )

    def test_samples_within_edges(self):
        samples = self.make().sample_array(RNG(), 10_000)
        assert samples.min() >= 0.0
        assert samples.max() <= 300.0

    def test_mean(self):
        dist = self.make()
        expected = (10 * 50 + 30 * 150 + 10 * 250) / 50
        assert dist.mean == pytest.approx(expected)
        samples = dist.sample_array(RNG(), 100_000)
        assert samples.mean() == pytest.approx(expected, rel=0.02)

    def test_variance_matches_samples(self):
        dist = self.make()
        samples = dist.sample_array(RNG(), 200_000)
        assert samples.var() == pytest.approx(dist.variance, rel=0.03)

    def test_pdf_density(self):
        dist = self.make()
        # Middle bin holds 60% of mass over width 100.
        assert dist.pdf(np.array([150.0]))[0] == pytest.approx(0.006)
        assert dist.pdf(np.array([-10.0]))[0] == 0.0
        assert dist.pdf(np.array([400.0]))[0] == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            HistogramDistribution([1], [0.0])
        with pytest.raises(ValueError):
            HistogramDistribution([1, 2], [0.0, 1.0, 0.5])
        with pytest.raises(ValueError):
            HistogramDistribution([0, 0], [0.0, 1.0, 2.0])
