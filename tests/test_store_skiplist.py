"""Skip list: reference-model equivalence and property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import OpStats, SkipList


def make(seed=0):
    return SkipList(rng=np.random.default_rng(seed))


class TestBasics:
    def test_empty(self):
        skiplist = make()
        assert len(skiplist) == 0
        value, stats = skiplist.get(1)
        assert value is None
        assert isinstance(stats, OpStats)

    def test_put_get(self):
        skiplist = make()
        skiplist.put("k", "v")
        value, _stats = skiplist.get("k")
        assert value == "v"
        assert len(skiplist) == 1

    def test_update_in_place(self):
        skiplist = make()
        skiplist.put(1, "a")
        skiplist.put(1, "b")
        assert len(skiplist) == 1
        assert skiplist.get(1)[0] == "b"

    def test_ordered_iteration(self):
        skiplist = make()
        for key in (5, 1, 9, 3, 7):
            skiplist.put(key, str(key))
        assert list(skiplist.keys()) == [1, 3, 5, 7, 9]

    def test_delete(self):
        skiplist = make()
        for key in range(10):
            skiplist.put(key, key)
        removed, _stats = skiplist.delete(5)
        assert removed
        assert len(skiplist) == 9
        assert skiplist.get(5)[0] is None
        removed_again, _stats = skiplist.delete(5)
        assert not removed_again

    def test_scan(self):
        skiplist = make()
        for key in range(0, 100, 2):  # even keys
            skiplist.put(key, key * 10)
        items, stats = skiplist.scan(10, 5)
        assert items == [(10, 100), (12, 120), (14, 140), (16, 160), (18, 180)]
        assert stats.items_scanned == 5

    def test_scan_from_missing_key(self):
        skiplist = make()
        for key in (1, 5, 9):
            skiplist.put(key, key)
        items, _stats = skiplist.scan(2, 10)
        assert items == [(5, 5), (9, 9)]

    def test_scan_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make().scan(0, -1)

    def test_work_scales_sublinearly(self):
        # O(log n): work on 64k keys should be well under 2x the work
        # on 4k keys (linear would be 16x).
        small = make(1)
        for key in range(4_000):
            small.put(key, key)
        large = make(1)
        for key in range(64_000):
            large.put(key, key)

        def mean_hops(store, num_keys):
            rng = np.random.default_rng(3)
            total = 0
            for _ in range(200):
                _value, stats = store.get(int(rng.integers(0, num_keys)))
                total += stats.nodes_traversed + stats.levels_descended
            return total / 200

        assert mean_hops(large, 64_000) < 2.5 * mean_hops(small, 4_000)


class TestAgainstReferenceModel:
    def test_mixed_workload_matches_dict(self):
        skiplist = make(7)
        reference = {}
        rng = np.random.default_rng(99)
        for _ in range(5_000):
            op = rng.integers(0, 4)
            key = int(rng.integers(0, 300))
            if op == 0:
                value = int(rng.integers(0, 10_000))
                skiplist.put(key, value)
                reference[key] = value
            elif op == 1:
                assert skiplist.get(key)[0] == reference.get(key)
            elif op == 2:
                removed, _stats = skiplist.delete(key)
                assert removed == (key in reference)
                reference.pop(key, None)
            else:
                count = int(rng.integers(1, 10))
                items, _stats = skiplist.scan(key, count)
                expected = sorted(
                    (k, v) for k, v in reference.items() if k >= key
                )[:count]
                assert items == expected
        assert len(skiplist) == len(reference)
        assert list(skiplist.items()) == sorted(reference.items())


@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_keys_always_sorted(keys):
    skiplist = make(2)
    for key in keys:
        skiplist.put(key, key)
    stored = list(skiplist.keys())
    assert stored == sorted(set(keys))


@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=100),
    st.lists(st.integers(min_value=0, max_value=100), max_size=50),
)
@settings(max_examples=100, deadline=None)
def test_property_put_then_delete(puts, deletes):
    skiplist = make(3)
    for key in puts:
        skiplist.put(key, key)
    for key in deletes:
        skiplist.delete(key)
    expected = sorted(set(puts) - set(deletes))
    assert list(skiplist.keys()) == expected


@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=100),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_property_scan_matches_sorted_slice(keys, start, count):
    skiplist = make(4)
    for key in keys:
        skiplist.put(key, key)
    items, stats = skiplist.scan(start, count)
    expected = [(k, k) for k in sorted(set(keys)) if k >= start][:count]
    assert items == expected
    assert stats.items_scanned == len(expected)
