"""Metrics: recorder, summaries, sweeps, SLO extraction, tables."""

import math

import numpy as np
import pytest

from repro.metrics import (
    LatencyRecorder,
    LatencySummary,
    StreamingLatencyRecorder,
    LoadSweep,
    SweepPoint,
    SweepResult,
    format_table,
    sweep_table,
    sweeps_csv,
    throughput_under_slo,
)


def make_point(load, tput, p99, count=100):
    summary = LatencySummary(
        count=count, mean=p99 / 2, p50=p99 / 3, p90=p99 / 1.5,
        p95=p99 / 1.2, p99=p99, p999=p99 * 1.5, max=p99 * 2,
    )
    return SweepPoint(offered_load=load, achieved_throughput=tput, summary=summary)


class TestLatencyRecorder:
    def test_record_and_summary(self):
        recorder = LatencyRecorder()
        for index in range(100):
            recorder.record(float(index), float(index + 1))
        summary = recorder.summary()
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.max == 100.0
        assert summary.p50 == pytest.approx(np.percentile(np.arange(1, 101), 50))

    def test_labels_filter(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 10.0, "get")
        recorder.record(1.0, 99999.0, "scan")
        recorder.record(2.0, 20.0, "get")
        assert recorder.labels == ["get", "scan"]
        gets = recorder.latencies(label="get")
        np.testing.assert_array_equal(gets, [10.0, 20.0])
        assert recorder.summary(label="get").max == 20.0

    def test_warmup_time_trim(self):
        recorder = LatencyRecorder()
        for index in range(10):
            recorder.record(float(index), 1.0)
        assert recorder.latencies(warmup_time=5.0).size == 5

    def test_warmup_fraction_trim(self):
        recorder = LatencyRecorder()
        for index in range(100):
            recorder.record(float(index), 1.0)
        assert recorder.latencies(warmup_fraction=0.2).size == pytest.approx(
            80, abs=2
        )

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(0.0, -1.0)

    def test_empty_summary_is_nan(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert math.isnan(summary.p99)

    def test_throughput(self):
        recorder = LatencyRecorder()
        # 11 completions from t=0 to t=10: 10 per 10 time units after
        # the first.
        for index in range(11):
            recorder.record(float(index), 1.0)
        assert recorder.throughput() == pytest.approx(1.1)

    def test_throughput_degenerate(self):
        recorder = LatencyRecorder()
        assert recorder.throughput() == 0.0
        recorder.record(1.0, 1.0)
        assert recorder.throughput() == 0.0

    def test_invalid_warmup_fraction(self):
        with pytest.raises(ValueError):
            LatencyRecorder().latencies(warmup_fraction=1.0)


class TestLatencySummary:
    def test_empty_sample_is_nan_not_a_crash(self):
        # A run completing zero RPCs (e.g. all lost to injected
        # crashes) must summarize, not raise on np.percentile([]).
        for values in (np.array([]), [], np.array([], dtype=int)):
            summary = LatencySummary.from_values(values)
            assert summary.is_empty and summary.count == 0
            assert math.isnan(summary.p99) and math.isnan(summary.mean)
        assert LatencySummary.empty().is_empty
        assert not LatencySummary.from_values([1.0]).is_empty

    def test_from_values_coerces_integer_dtype(self):
        summary = LatencySummary.from_values(np.array([1, 2, 3]))
        assert summary.mean == pytest.approx(2.0)
        assert isinstance(summary.mean, float)

    def test_scaled(self):
        summary = LatencySummary.from_values(np.array([1.0, 2.0, 3.0, 4.0]))
        scaled = summary.scaled(10.0)
        assert scaled.mean == pytest.approx(summary.mean * 10)
        assert scaled.p99 == pytest.approx(summary.p99 * 10)
        assert scaled.count == summary.count


class TestStreamingLatencyRecorder:
    def test_boundary_quantiles_stay_in_the_value_bucket(self):
        # A constant sample on an exact histogram bucket edge (8.0)
        # used to report quantiles a full bucket *below* the only
        # recorded value (the floor(log) edge regression).
        recorder = StreamingLatencyRecorder(expected_count=100)
        for index in range(100):
            recorder.record(float(index), 8.0)
        summary = recorder.summary()
        ratio = 2.0 ** (1.0 / 64)
        assert summary.count == 100 and summary.max == 8.0
        for quantile in (summary.p50, summary.p90, summary.p99):
            assert 8.0 <= quantile <= 8.0 * ratio

    def test_empty_and_unknown_label_summaries(self):
        recorder = StreamingLatencyRecorder(expected_count=0)
        assert recorder.summary().is_empty
        recorder.record(0.0, 5.0, label="get")
        assert recorder.summary(label="scan").is_empty
        assert not recorder.summary(label="get").is_empty

    def test_all_warmup_summary_is_empty(self):
        recorder = StreamingLatencyRecorder(
            expected_count=10, warmup_fraction=0.5
        )
        for index in range(5):
            recorder.record(float(index), 1.0)
        assert len(recorder) == 5
        assert recorder.summary().is_empty

    def test_tracks_exact_recorder_within_bucket_ratio(self):
        exact = LatencyRecorder()
        streaming = StreamingLatencyRecorder(expected_count=2_000)
        rng = np.random.default_rng(5)
        for index, latency in enumerate(
            rng.lognormal(mean=2.0, sigma=1.0, size=2_000)
        ):
            exact.record(float(index), float(latency))
            streaming.record(float(index), float(latency))
        ratio = 2.0 ** (1.0 / 64)
        a, b = exact.summary(), streaming.summary()
        assert b.mean == pytest.approx(a.mean)
        for exact_q, approx_q in ((a.p50, b.p50), (a.p99, b.p99)):
            assert exact_q / ratio <= approx_q <= exact_q * ratio


class TestSweeps:
    def test_throughput_under_slo(self):
        points = [
            make_point(1.0, 1.0, 5.0),
            make_point(2.0, 2.0, 8.0),
            make_point(3.0, 2.9, 50.0),
        ]
        assert throughput_under_slo(points, slo=10.0) == 2.0
        assert throughput_under_slo(points, slo=100.0) == 2.9
        assert throughput_under_slo(points, slo=1.0) == 0.0
        with pytest.raises(ValueError):
            throughput_under_slo(points, slo=0.0)

    def test_sweep_result_helpers(self):
        sweep = SweepResult(
            "x", [make_point(1.0, 1.0, 5.0), make_point(2.0, 2.0, 9.0)]
        )
        assert sweep.p99s == [5.0, 9.0]
        assert sweep.throughputs == [1.0, 2.0]
        assert sweep.throughput_under_slo(6.0) == 1.0
        assert sweep.max_p99_before(1.5) == 5.0
        assert math.isnan(sweep.max_p99_before(0.5))
        assert len(sweep) == 2

    def test_load_sweep_runs_sorted(self):
        seen = []

        def run_point(load):
            seen.append(load)
            return make_point(load, load, load * 10)

        sweep = LoadSweep(run_point, [3.0, 1.0, 2.0], label="s").run()
        assert seen == [1.0, 2.0, 3.0]
        assert sweep.label == "s"

    def test_load_sweep_stops_at_saturation(self):
        def run_point(load):
            return make_point(load, load, 1000.0 if load > 1.5 else 1.0)

        sweep = LoadSweep(
            run_point,
            [1.0, 2.0, 3.0],
            stop_when_saturated=True,
            saturation_p99=100.0,
        ).run()
        assert len(sweep) == 2  # stopped after the first saturated point

    def test_load_sweep_validation(self):
        run = lambda load: make_point(load, load, 1.0)  # noqa: E731
        with pytest.raises(ValueError):
            LoadSweep(run, [])
        with pytest.raises(ValueError):
            LoadSweep(run, [0.0])
        with pytest.raises(ValueError):
            LoadSweep(run, [1.0], stop_when_saturated=True)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.34567], [10, 3.0]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "2.3457" in table

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_table_nan(self):
        table = format_table(["x"], [[float("nan")]])
        assert "nan" in table

    def test_sweep_table_aligns_by_position(self):
        long_sweep = SweepResult(
            "long", [make_point(1, 1, 5), make_point(2, 2, 9)]
        )
        short_sweep = SweepResult("short", [make_point(1, 1, 6)])
        table = sweep_table([long_sweep, short_sweep])
        assert "long:tput" in table
        assert "short:p99" in table
        assert len(table.splitlines()) == 4

    def test_sweep_table_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_table([])

    def test_sweeps_csv(self):
        sweep = SweepResult("s", [make_point(1.0, 1.5, 5.0)])
        csv = sweeps_csv([sweep])
        lines = csv.strip().splitlines()
        assert lines[0].startswith("label,")
        assert lines[1].startswith("s,1.0,1.5,5.0")


class TestStageBreakdown:
    def test_breakdown_from_system_run(self):
        from repro import make_system
        from repro.metrics import breakdown_from_messages

        result = make_system("1x16", "herd", seed=1).run_point(
            10.0, 2_000, keep_messages=True
        )
        breakdown = breakdown_from_messages(result.messages)
        assert breakdown.count == 2_000
        # Stages must reconstruct the mean end-to-end latency.
        assert breakdown.total == pytest.approx(
            result.point.summary.mean, rel=0.15
        )
        # HERD's processing dominates; NI stages are tens of ns.
        fractions = breakdown.fractions()
        assert fractions["service"] > 0.4
        assert fractions["reassembly"] < 0.1
        assert "Latency breakdown" in breakdown.table()

    def test_breakdown_requires_completed_messages(self):
        from repro.arch import SendMessage
        from repro.metrics import breakdown_from_messages

        with pytest.raises(ValueError):
            breakdown_from_messages([])
        with pytest.raises(ValueError):
            breakdown_from_messages([SendMessage(0, 0, 0, 128, 2, 1.0)])

    def test_messages_not_kept_by_default(self):
        from repro import make_system

        result = make_system("1x16", "herd", seed=1).run_point(5.0, 500)
        assert result.messages is None


class TestAsciiChart:
    def _sweeps(self):
        return [
            SweepResult("a", [make_point(1.0, 1.0, 5.0), make_point(2.0, 2.0, 50.0)]),
            SweepResult("b", [make_point(1.0, 1.0, 3.0), make_point(2.0, 2.0, 9.0)]),
        ]

    def test_sweeps_chart_renders_series(self):
        from repro.metrics import sweeps_chart

        chart = sweeps_chart(self._sweeps(), title="demo")
        assert "demo" in chart
        assert "o = a" in chart
        assert "x = b" in chart
        assert "achieved throughput" in chart

    def test_linear_and_log_scales(self):
        from repro.metrics import sweeps_chart

        log_chart = sweeps_chart(self._sweeps(), log_y=True)
        linear_chart = sweeps_chart(self._sweeps(), log_y=False)
        assert "log scale" in log_chart
        assert "log scale" not in linear_chart

    def test_chart_validation(self):
        from repro.metrics import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart([])
        with pytest.raises(ValueError):
            ascii_chart([("a", [1.0], [1.0, 2.0])])
        with pytest.raises(ValueError):
            ascii_chart([("a", [1.0], [1.0])], width=4)
        with pytest.raises(ValueError):
            ascii_chart([("a", [float("nan")], [float("nan")])])

    def test_nan_points_skipped(self):
        from repro.metrics import ascii_chart

        chart = ascii_chart(
            [("a", [1.0, 2.0], [5.0, float("nan")])],
        )
        assert "o = a" in chart

    def test_csv_plain_floats(self):
        import numpy as np

        from repro.metrics import sweeps_csv

        point = make_point(np.float64(1.0), np.float64(1.5), np.float64(5.0))
        csv = sweeps_csv([SweepResult("s", [point])])
        assert "np.float64" not in csv


class TestChromeTrace:
    def _messages(self):
        from repro import make_system

        result = make_system("1x16", "herd", seed=1).run_point(
            10.0, 300, keep_messages=True
        )
        return result.messages

    def test_three_events_per_message(self):
        from repro.metrics import chrome_trace_events

        messages = self._messages()
        events = chrome_trace_events(messages)
        assert len(events) == 3 * len(messages)
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

    def test_tracks_cover_stages(self):
        from repro.metrics import chrome_trace_events

        tids = {event["tid"] for event in chrome_trace_events(self._messages())}
        assert any(tid.startswith("NI backend") for tid in tids)
        assert any(tid.startswith("dispatcher") for tid in tids)
        assert any(tid.startswith("core") for tid in tids)

    def test_export_writes_valid_json(self, tmp_path):
        import json

        from repro.metrics import export_chrome_trace

        messages = self._messages()
        path = tmp_path / "trace.json"
        count = export_chrome_trace(messages, str(path))
        assert count == 3 * len(messages)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ns"
        assert len(payload["traceEvents"]) == count

    def test_export_to_file_object(self):
        import io
        import json

        from repro.metrics import export_chrome_trace

        buffer = io.StringIO()
        export_chrome_trace(self._messages(), buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]

    def test_incomplete_message_rejected(self):
        from repro.arch import SendMessage
        from repro.metrics import chrome_trace_events

        with pytest.raises(ValueError):
            chrome_trace_events([SendMessage(0, 0, 0, 128, 2, 1.0)])
