"""Shaped arrivals, fault timelines, and the transient fluid tier.

Covers the engine-tier extensions: the fast tier consuming arbitrary
``repro.popload`` arrival processes and ``repro.faults`` plans, the
fluid tier's transient mean-field ODE, the capability matrix behind
``resolve_engine``, and the determinism contracts (repeat-run
bit-identity, worker-count invariance, event-count conservation
against the profile's integral) that keep the surrogate tiers honest.
"""

import numpy as np
import pytest

from repro.fastpath import (
    ENGINE_CAPABILITIES,
    arrival_capability,
    calibrated_chip_profile,
    engine_supports,
    fast_chip_point,
    fluid_transient_measure,
    required_capabilities,
    resolve_engine,
    simulate_cluster_fluid,
    simulate_rack_fast,
)
from repro.faults import FabricDegradation, FaultPlan, NodeCrash, NodeSlowdown
from repro.popload import (
    MMPP,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NonhomogeneousPoisson,
    StationaryPoisson,
)
from repro.workloads import HerdWorkload

MEAN_SERVICE_NS = 553.7


def _mmpp(rate_mrps: float) -> MMPP:
    rps = rate_mrps * 1e6
    return MMPP((0.6 * rps, 1.8 * rps), (30_000.0, 15_000.0))


def _flash(rate_mrps: float, horizon_ns: float) -> NonhomogeneousPoisson:
    rps = rate_mrps * 1e6
    return NonhomogeneousPoisson(
        FlashCrowdRate(
            base_rate_rps=0.8 * rps,
            peak_rate_rps=2.0 * rps,
            start_ns=0.3 * horizon_ns,
            ramp_ns=0.05 * horizon_ns,
            hold_ns=0.15 * horizon_ns,
            decay_ns=0.05 * horizon_ns,
        )
    )


class TestFastChipShaped:
    def test_repeat_run_bit_identity_mmpp_and_flash(self):
        workload = HerdWorkload()
        profile = calibrated_chip_profile("16x1")
        for process in (_mmpp(20.0), _flash(20.0, 3000 / 20.0 * 1e3)):
            first = fast_chip_point(
                "16x1", workload, 20.0, 3000, 7, profile,
                arrival_process=process,
            )
            second = fast_chip_point(
                "16x1", workload, 20.0, 3000, 7, profile,
                arrival_process=process,
            )
            assert first.summary.p99 == second.summary.p99
            assert first.summary.mean == second.summary.mean
            assert first.achieved_throughput == second.achieved_throughput

    def test_event_count_conservation_vs_profile_integral(self):
        # The thinning loop must generate arrivals at the profile's
        # intensity: over the sampled span, the profile's integral
        # (expected event count) matches the actual count within
        # Poisson noise.
        n = 20_000
        profile = FlashCrowdRate(
            base_rate_rps=16e6,
            peak_rate_rps=40e6,
            start_ns=300_000.0,
            ramp_ns=50_000.0,
            hold_ns=150_000.0,
            decay_ns=50_000.0,
        )
        process = NonhomogeneousPoisson(profile)
        gaps = process.sample_gaps(np.random.default_rng(3), n)
        span_ns = float(np.sum(gaps))
        expected = profile.mean_rate(span_ns) * span_ns * 1e-9
        assert expected == pytest.approx(n, rel=6.0 / np.sqrt(n))

    def test_shaped_load_shifts_the_tail(self):
        workload = HerdWorkload()
        profile = calibrated_chip_profile("1x16")
        flat = fast_chip_point("1x16", workload, 23.0, 3000, 0, profile)
        shaped = fast_chip_point(
            "1x16", workload, 23.0, 3000, 0, profile,
            arrival_process=_flash(23.0, 3000 / 23.0 * 1e3),
        )
        assert shaped.summary.p99 > flat.summary.p99


class TestFastClusterShaped:
    def test_rack_repeat_identity_under_mmpp(self):
        kwargs = dict(
            policy="jsq2",
            per_node_mrps=20.0,
            requests_per_node=400,
            seed=11,
            arrival_process=_mmpp(20.0),
        )
        first = simulate_rack_fast(8, **kwargs)
        second = simulate_rack_fast(8, **kwargs)
        assert first.aggregate.p99 == second.aggregate.p99
        assert first.completed == second.completed
        assert list(first.per_node_completed) == list(second.per_node_completed)

    def test_rack_shaped_differs_from_constant(self):
        flat = simulate_rack_fast(
            8, policy="jsq2", per_node_mrps=20.0, requests_per_node=400,
            seed=11,
        )
        shaped = simulate_rack_fast(
            8, policy="jsq2", per_node_mrps=20.0, requests_per_node=400,
            seed=11, arrival_process=_flash(20.0, 400 / 20.0 * 1e3),
        )
        assert shaped.completed == flat.completed
        assert shaped.aggregate.p99 != flat.aggregate.p99

    def test_stationary_process_matches_legacy_poisson(self):
        # StationaryPoisson.sample_gaps draws the identical
        # exponential batch the legacy generator drew: byte-identical
        # results, not just statistically close.
        legacy = simulate_rack_fast(
            4, policy="random", per_node_mrps=18.0, requests_per_node=500,
            seed=5,
        )
        explicit = simulate_rack_fast(
            4, policy="random", per_node_mrps=18.0, requests_per_node=500,
            seed=5, arrival_process=StationaryPoisson(18e6),
        )
        assert explicit.aggregate.p99 == legacy.aggregate.p99
        assert explicit.aggregate.mean == legacy.aggregate.mean


class TestFastClusterFaults:
    def test_trivial_plan_is_bit_identical_to_no_faults(self):
        base = simulate_rack_fast(
            6, policy="jsq2", per_node_mrps=20.0, requests_per_node=400,
            seed=2,
        )
        trivial = simulate_rack_fast(
            6, policy="jsq2", per_node_mrps=20.0, requests_per_node=400,
            seed=2, faults=FaultPlan(),
        )
        assert trivial.aggregate.p99 == base.aggregate.p99
        assert trivial.completed == base.completed

    def test_crash_drops_and_availability(self):
        horizon_ns = 400 / 20.0 * 1e3
        plan = FaultPlan(
            events=(
                NodeCrash(node=2, at_ns=0.2 * horizon_ns,
                          outage_ns=0.5 * horizon_ns),
            )
        )
        result = simulate_rack_fast(
            6, policy="random", per_node_mrps=20.0, requests_per_node=400,
            seed=2, faults=plan,
        )
        assert result.lost > 0
        assert result.fault_stats.crash_drops == result.lost
        assert result.fault_stats.crashes == 1
        assert result.fault_stats.recoveries == 1
        assert result.availability[2] < 1.0
        assert min(
            a for i, a in enumerate(result.availability) if i != 2
        ) == pytest.approx(1.0)
        assert result.completed + result.lost == result.offered
        assert result.goodput_fraction < 1.0

    def test_slowdown_raises_the_tail(self):
        horizon_ns = 400 / 20.0 * 1e3
        plan = FaultPlan(
            events=(
                NodeSlowdown(node=0, at_ns=0.0, duration_ns=horizon_ns,
                             factor=0.3),
            )
        )
        base = simulate_rack_fast(
            4, policy="random", per_node_mrps=20.0, requests_per_node=400,
            seed=3,
        )
        slowed = simulate_rack_fast(
            4, policy="random", per_node_mrps=20.0, requests_per_node=400,
            seed=3, faults=plan,
        )
        assert slowed.fault_stats.slowdowns == 1
        assert slowed.aggregate.p99 > base.aggregate.p99

    def test_fabric_degradation_drops_and_spikes(self):
        horizon_ns = 600 / 20.0 * 1e3
        plan = FaultPlan(
            events=(
                FabricDegradation(
                    at_ns=0.0, duration_ns=horizon_ns, drop_prob=0.05,
                    spike_prob=0.1, spike_ns=2_000.0,
                ),
            )
        )
        result = simulate_rack_fast(
            6, policy="jsq2", per_node_mrps=20.0, requests_per_node=600,
            seed=4, faults=plan,
        )
        assert result.fault_stats.msg_drops > 0
        assert result.fault_stats.delay_spikes > 0
        assert result.lost == result.fault_stats.msg_drops
        assert result.completed + result.lost == result.offered

    def test_faulted_run_repeat_identity(self):
        plan = FaultPlan(crash_rate_hz=2e4, slowdown_rate_hz=2e4,
                         drop_prob=0.01)
        kwargs = dict(
            policy="jsq2", per_node_mrps=20.0, requests_per_node=400,
            seed=6, faults=plan,
        )
        first = simulate_rack_fast(6, **kwargs)
        second = simulate_rack_fast(6, **kwargs)
        assert first.aggregate.p99 == second.aggregate.p99
        assert first.lost == second.lost
        assert first.fault_stats.msg_drops == second.fault_stats.msg_drops


class TestFluidTransient:
    def test_constant_profile_matches_stationary(self):
        stationary = simulate_cluster_fluid(
            256, policy="jsq2", per_node_mrps=14.0,
            mean_service_ns=MEAN_SERVICE_NS, seed=0,
        )
        transient = simulate_cluster_fluid(
            256, policy="jsq2", per_node_mrps=14.0,
            mean_service_ns=MEAN_SERVICE_NS, seed=0,
            arrival_process=NonhomogeneousPoisson(ConstantRate(14e6)),
            horizon_ns=50_000.0,
        )
        assert transient.aggregate.p99 == pytest.approx(
            stationary.aggregate.p99, rel=0.05
        )

    def test_diurnal_transient_is_deterministic(self):
        process = NonhomogeneousPoisson(DiurnalRate(14e6, 0.6, 20_000.0))
        kwargs = dict(
            policy="jsq2", per_node_mrps=14.0,
            mean_service_ns=MEAN_SERVICE_NS, seed=1,
            arrival_process=process, horizon_ns=20_000.0,
        )
        first = simulate_cluster_fluid(256, **kwargs)
        second = simulate_cluster_fluid(256, **kwargs)
        assert first.aggregate.p99 == second.aggregate.p99
        assert first.aggregate.mean == second.aggregate.mean

    def test_transient_overload_window_survives(self):
        # A flash peak above capacity builds fluid backlog and drains
        # it; the run must stay finite and the tail must exceed the
        # no-flash tail.
        flash = NonhomogeneousPoisson(
            FlashCrowdRate(10e6, 40e6, 5_000.0, 2_000.0, 4_000.0, 2_000.0)
        )
        shaped = simulate_cluster_fluid(
            128, policy="jsq2", per_node_mrps=12.0,
            mean_service_ns=MEAN_SERVICE_NS, seed=0,
            arrival_process=flash, horizon_ns=30_000.0,
        )
        flat = simulate_cluster_fluid(
            128, policy="jsq2", per_node_mrps=12.0,
            mean_service_ns=MEAN_SERVICE_NS, seed=0,
            arrival_process=NonhomogeneousPoisson(ConstantRate(12e6)),
            horizon_ns=30_000.0,
        )
        assert np.isfinite(shaped.aggregate.p99)
        assert shaped.aggregate.p99 > flat.aggregate.p99

    def test_mmpp_raises_actionable_error(self):
        with pytest.raises(ValueError, match="deterministic RateProfile"):
            simulate_cluster_fluid(
                256, policy="jsq2", per_node_mrps=14.0,
                mean_service_ns=MEAN_SERVICE_NS, seed=0,
                arrival_process=_mmpp(14.0), horizon_ns=20_000.0,
            )

    def test_transient_measure_is_a_distribution_trajectory(self):
        profile = DiurnalRate(14e6, 0.6, 20_000.0)
        grid, snaps = fluid_transient_measure(
            profile, 20_000.0, 16, MEAN_SERVICE_NS, 2, snapshots=64
        )
        assert grid.shape == (64,)
        assert snaps.shape[0] == 64
        # Each snapshot is a valid tail-distribution vector: s_0 = 1,
        # values in [0, 1], non-increasing in queue length.
        assert np.all(snaps[:, 0] == pytest.approx(1.0))
        assert np.all((snaps >= 0.0) & (snaps <= 1.0))
        assert np.all(np.diff(snaps, axis=1) <= 1e-12)


class TestCapabilityMatrix:
    def test_arrival_tokens(self):
        assert arrival_capability(None) is None
        assert arrival_capability(StationaryPoisson(1e6)) is None
        shaped = NonhomogeneousPoisson(ConstantRate(1e6))
        assert arrival_capability(shaped) == "arrivals:profile"
        assert arrival_capability(_mmpp(1.0)) == "arrivals:stochastic"

    def test_required_capabilities(self):
        assert required_capabilities() == frozenset()
        assert required_capabilities(faults=FaultPlan()) == frozenset()
        need = required_capabilities(
            arrival_process=_mmpp(1.0),
            faults=FaultPlan(drop_prob=0.1),
            tracing=True,
            chip=True,
        )
        assert need == {
            "arrivals:stochastic", "faults", "tracing", "chip",
        }

    def test_engine_supports_matrix(self):
        assert engine_supports("des", ENGINE_CAPABILITIES["fast"])
        assert not engine_supports("fast", {"tracing"})
        assert not engine_supports("fluid", {"arrivals:stochastic"})
        assert engine_supports("fluid", {"arrivals:profile"})
        with pytest.raises(ValueError, match="engine must be one of"):
            engine_supports("auto", set())

    def test_auto_falls_back_to_fast_never_fluid(self):
        # Above the threshold auto wants fluid, but MMPP arrivals and
        # fault plans are per-RPC features: it must fall back to fast.
        assert resolve_engine(
            "auto", 1024, arrival_process=_mmpp(1.0)
        ) == "fast"
        assert resolve_engine(
            "auto", 1024, faults=FaultPlan(drop_prob=0.1)
        ) == "fast"
        # Tracing exists only in the DES.
        assert resolve_engine("auto", 1024, tracing=True) == "des"
        # A deterministic profile stays on the fluid tier.
        shaped = NonhomogeneousPoisson(DiurnalRate(1e6, 0.5, 1e6))
        assert resolve_engine("auto", 1024, arrival_process=shaped) == "fluid"
        assert resolve_engine("auto", 64, arrival_process=shaped) == "fast"

    def test_explicit_engine_without_capability_raises(self):
        with pytest.raises(ValueError, match="does not support"):
            resolve_engine("fluid", 1024, arrival_process=_mmpp(1.0))
        with pytest.raises(ValueError, match="does not support"):
            resolve_engine("fast", 16, tracing=True)

    def test_env_override_still_capability_checked(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fluid")
        with pytest.raises(ValueError, match="does not support"):
            resolve_engine("des", 1024, arrival_process=_mmpp(1.0))
        monkeypatch.setenv("REPRO_ENGINE", "des")
        assert resolve_engine(
            "fluid", 1024, arrival_process=_mmpp(1.0)
        ) == "des"
