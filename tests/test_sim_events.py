"""Event primitive semantics: the contract everything else relies on."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
)


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_starts_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(RuntimeError, match="not been triggered"):
            _ = event.value

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError, match="already been triggered"):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        with pytest.raises(RuntimeError, match="already been triggered"):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.add_callback(seen.append)
        event.succeed("x")
        assert seen == []  # not yet processed
        env.run()
        assert seen == [event]
        assert event.processed

    def test_callback_after_processed_runs_immediately(self, env):
        event = env.event()
        event.succeed()
        env.run()
        seen = []
        event.add_callback(seen.append)
        assert seen == [event]

    def test_unhandled_failure_surfaces(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        event.defuse()
        env.run()  # no raise


class TestTimeout:
    def test_fires_at_delay(self, env):
        times = []
        env.timeout(5).add_callback(lambda e: times.append(env.now))
        env.run()
        assert times == [5.0]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_carries_value(self, env):
        result = env.run(env.timeout(3, value="done"))
        assert result == "done"

    def test_zero_delay_is_valid(self, env):
        assert env.run(env.timeout(0, value="now")) == "now"
        assert env.now == 0.0

    def test_cannot_be_manually_triggered(self, env):
        timeout = env.timeout(1)
        with pytest.raises(RuntimeError):
            timeout.succeed()


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def proc():
            yield env.timeout(1)
            return "result"

        assert env.run(env.process(proc())) == "result"

    def test_yielding_processed_event_continues_immediately(self, env):
        timeout = env.timeout(1)

        def proc():
            yield env.timeout(2)  # timeout already processed by now
            value = yield timeout
            return (env.now, value)

        assert env.run(env.process(proc())) == (2.0, None)

    def test_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1)
            raise RuntimeError("inner")

        def waiter():
            with pytest.raises(RuntimeError, match="inner"):
                yield env.process(failing())
            return "handled"

        assert env.run(env.process(waiter())) == "handled"

    def test_unhandled_process_exception_surfaces(self, env):
        def failing():
            yield env.timeout(1)
            raise RuntimeError("inner")

        env.process(failing())
        with pytest.raises(RuntimeError, match="inner"):
            env.run()

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(5)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_yield_non_event_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_two_processes_interleave(self, env):
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield env.timeout(period)
                log.append((env.now, name))

        env.process(ticker("a", 2))
        env.process(ticker("b", 3))
        env.run()
        # At t=6 both fire; b's timeout was scheduled earlier (at t=3,
        # vs t=4 for a's), so it is processed first.
        assert log == [
            (2.0, "a"),
            (3.0, "b"),
            (4.0, "a"),
            (6.0, "b"),
            (6.0, "a"),
            (9.0, "b"),
        ]


class TestInterrupt:
    def test_interrupt_wakes_process(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as interrupt:
                return ("interrupted", env.now, interrupt.cause)

        process = env.process(sleeper())

        def killer():
            yield env.timeout(3)
            process.interrupt("reason")

        env.process(killer())
        assert env.run(process) == ("interrupted", 3.0, "reason")

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        process = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError, match="terminated"):
            process.interrupt()

    def test_original_target_still_fires_for_others(self, env):
        timeout = env.timeout(10, value="late")

        def sleeper():
            try:
                yield timeout
            except Interrupt:
                pass
            return "done"

        def other():
            value = yield timeout
            return (env.now, value)

        victim = env.process(sleeper())

        def killer():
            yield env.timeout(1)
            victim.interrupt()

        env.process(killer())
        other_proc = env.process(other())
        assert env.run(other_proc) == (10.0, "late")


class TestConditions:
    def test_any_of_fires_on_first(self, env):
        def proc():
            first = env.timeout(3, "x")
            second = env.timeout(5, "y")
            values = yield first | second
            return (env.now, sorted(values.values()))

        assert env.run(env.process(proc())) == (3.0, ["x"])

    def test_all_of_waits_for_all(self, env):
        def proc():
            first = env.timeout(3, "x")
            second = env.timeout(5, "y")
            values = yield first & second
            return (env.now, sorted(values.values()))

        assert env.run(env.process(proc())) == (5.0, ["x", "y"])

    def test_empty_condition_triggers_immediately(self, env):
        condition = AllOf(env, [])
        env.run()
        assert condition.processed
        assert condition.value == {}

    def test_condition_failure_propagates(self, env):
        event = env.event()

        def proc():
            with pytest.raises(ValueError, match="boom"):
                yield event | env.timeout(100)
            return "caught"

        process = env.process(proc())

        def failer():
            yield env.timeout(1)
            event.fail(ValueError("boom"))

        env.process(failer())
        assert env.run(process) == "caught"

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError, match="different environments"):
            AnyOf(env, [env.event(), other.event()])

    def test_anyof_excludes_pending_timeouts(self, env):
        # Regression: a Timeout is "triggered" at creation; it must not
        # appear in the condition's value dict until it actually fired.
        def proc():
            early = env.timeout(1, "early")
            late = env.timeout(100, "late")
            values = yield early | late
            return list(values.values())

        assert env.run(env.process(proc())) == ["early"]
