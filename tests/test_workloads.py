"""Workloads: sampling semantics, means, and the traffic generator."""

import numpy as np
import pytest

from repro.arch import Chip, ChipConfig
from repro.balancing import SingleQueue
from repro.dists import Exponential
from repro.sim import Environment, RngRegistry
from repro.workloads import (
    DistributionWorkload,
    HerdWorkload,
    MasstreeWorkload,
    MicrobenchCosts,
    MicrobenchProgram,
    SyntheticWorkload,
    TrafficGenerator,
)

RNG = lambda: np.random.default_rng(21)  # noqa: E731


class TestSyntheticWorkload:
    def test_kinds(self):
        for kind in ("fixed", "uniform", "exponential", "gev"):
            workload = SyntheticWorkload(kind)
            assert workload.mean_processing_ns == pytest.approx(600.0, rel=0.01)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SyntheticWorkload("bursty")

    def test_single_label(self):
        workload = SyntheticWorkload("fixed")
        service, label = workload.sample(RNG())
        assert service == 600.0
        assert label == "rpc"


class TestHerdWorkload:
    def test_mean_near_paper(self):
        workload = HerdWorkload()
        rng = RNG()
        samples = [workload.sample(rng)[0] for _ in range(50_000)]
        assert np.mean(samples) == pytest.approx(
            workload.mean_processing_ns, rel=0.03
        )
        assert workload.mean_processing_ns == pytest.approx(330.0, rel=0.05)

    def test_write_fraction_bounds(self):
        with pytest.raises(ValueError):
            HerdWorkload(write_fraction=1.5)

    def test_message_sizes(self):
        workload = HerdWorkload()
        assert workload.reply_size_bytes == 512  # §5's 512B reply


class TestMasstreeWorkload:
    def test_labels_and_fractions(self):
        workload = MasstreeWorkload()
        rng = RNG()
        labels = [workload.sample(rng)[1] for _ in range(20_000)]
        scan_fraction = labels.count("scan") / len(labels)
        assert scan_fraction == pytest.approx(0.01, abs=0.005)

    def test_scan_durations_in_band(self):
        workload = MasstreeWorkload()
        rng = RNG()
        scans = []
        while len(scans) < 50:
            service, label = workload.sample(rng)
            if label == "scan":
                scans.append(service)
        assert min(scans) >= 60_000.0
        assert max(scans) <= 120_000.0

    def test_slo_targets_gets(self):
        workload = MasstreeWorkload()
        assert workload.slo_label == "get"
        assert workload.slo_mean_processing_ns == pytest.approx(1250.0)
        # Overall mean is dominated by scans: ≈ 2.1µs.
        assert workload.mean_processing_ns > 2000.0

    def test_execution_driven_mode(self):
        from repro.store import TimedKVStore

        store = TimedKVStore(num_keys=20_000, seed=1)
        workload = MasstreeWorkload(store=store)
        rng = RNG()
        service, label = workload.sample(rng)
        assert service > 0
        assert label in ("get", "scan")
        assert workload.slo_mean_processing_ns == store.expected_get_ns

    def test_invalid_scan_fraction(self):
        with pytest.raises(ValueError):
            MasstreeWorkload(scan_fraction=1.0)


class TestDistributionWorkload:
    def test_wraps_distribution(self):
        workload = DistributionWorkload(Exponential(100.0), name="exp")
        assert workload.mean_processing_ns == 100.0
        assert workload.name == "exp"

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            DistributionWorkload(Exponential(1.0), request_size_bytes=0)


class TestMicrobenchCosts:
    def test_totals(self):
        costs = MicrobenchCosts.lean()
        assert costs.total_ns == costs.pre_ns + costs.post_ns
        assert costs.total_ns == pytest.approx(220.0)

    def test_paper_synthetic_total(self):
        assert MicrobenchCosts.paper_synthetic().total_ns == pytest.approx(600.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MicrobenchCosts(poll_detect_ns=-1.0)

    def test_program_reply_size(self):
        program = MicrobenchProgram(MicrobenchCosts.lean(), reply_size_bytes=256)
        assert program.reply_size_bytes(None) == 256
        with pytest.raises(ValueError):
            MicrobenchProgram(MicrobenchCosts.lean(), reply_size_bytes=0)


class TestTrafficGenerator:
    def build(self, rate_mrps=5.0, num_requests=2000, slots=32):
        env = Environment()
        config = ChipConfig(send_slots_per_node=slots)
        chip = Chip(
            env, config, MicrobenchProgram(MicrobenchCosts.lean()), RngRegistry(0)
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        traffic = TrafficGenerator(
            chip,
            SyntheticWorkload("exponential"),
            arrival_rate_rps=rate_mrps * 1e6,
            num_requests=num_requests,
            rngs=RngRegistry(0),
        )
        return chip, traffic

    def test_all_requests_complete(self):
        chip, traffic = self.build()
        chip.env.run()
        assert traffic.generated == 2000
        assert chip.stats.completed == 2000

    def test_arrival_rate_matches(self):
        chip, traffic = self.build(rate_mrps=5.0, num_requests=20_000)
        chip.env.run()
        elapsed_ns = chip.env.now
        rate = traffic.generated / elapsed_ns * 1e3  # MRPS
        assert rate == pytest.approx(5.0, rel=0.05)

    def test_no_stalls_below_saturation(self):
        chip, traffic = self.build(rate_mrps=5.0)
        chip.env.run()
        assert traffic.stalled == 0
        assert traffic.stall_fraction == 0.0

    def test_stalls_with_one_slot_under_overload(self):
        chip, traffic = self.build(rate_mrps=40.0, num_requests=5000, slots=1)
        chip.env.run()
        assert traffic.stalled > 0
        # Flow control defers but never drops.
        assert chip.stats.completed == 5000

    def test_invalid_params(self):
        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        with pytest.raises(ValueError):
            TrafficGenerator(
                chip, SyntheticWorkload("fixed"), 0.0, 10, RngRegistry(0)
            )
        with pytest.raises(ValueError):
            TrafficGenerator(
                chip, SyntheticWorkload("fixed"), 1e6, 0, RngRegistry(0)
            )


class TestBimodalWorkload:
    def test_mean_and_labels(self):
        from repro.workloads import BimodalWorkload

        workload = BimodalWorkload(short_ns=500.0, long_ns=5_000.0, long_fraction=0.1)
        assert workload.mean_processing_ns == pytest.approx(950.0)
        assert workload.slo_mean_processing_ns == 500.0
        assert workload.mode_separation == 10.0
        rng = RNG()
        labels = [workload.sample(rng)[1] for _ in range(20_000)]
        assert labels.count("long") / len(labels) == pytest.approx(0.1, abs=0.01)

    def test_fixed_modes_sample_exactly(self):
        from repro.workloads import BimodalWorkload

        workload = BimodalWorkload(variability="fixed")
        rng = RNG()
        for _ in range(100):
            service, label = workload.sample(rng)
            assert service in (workload.short_ns, workload.long_ns)

    def test_exponential_modes(self):
        from repro.workloads import BimodalWorkload

        workload = BimodalWorkload(variability="exponential")
        rng = RNG()
        samples = [workload.sample(rng)[0] for _ in range(30_000)]
        assert np.mean(samples) == pytest.approx(
            workload.mean_processing_ns, rel=0.05
        )

    def test_validation(self):
        from repro.workloads import BimodalWorkload

        with pytest.raises(ValueError):
            BimodalWorkload(short_ns=1000.0, long_ns=500.0)
        with pytest.raises(ValueError):
            BimodalWorkload(long_fraction=0.0)
        with pytest.raises(ValueError):
            BimodalWorkload(variability="lognormal")


class TestHerdZipf:
    def test_zipf_preserves_mean(self):
        workload = HerdWorkload(key_popularity="zipf")
        rng = RNG()
        samples = [workload.sample(rng)[0] for _ in range(60_000)]
        assert np.mean(samples) == pytest.approx(
            workload.mean_processing_ns, rel=0.03
        )

    def test_zipf_increases_variance(self):
        rng_u, rng_z = RNG(), RNG()
        uniform = HerdWorkload(key_popularity="uniform")
        zipf = HerdWorkload(key_popularity="zipf")
        u_samples = [uniform.sample(rng_u)[0] for _ in range(40_000)]
        z_samples = [zipf.sample(rng_z)[0] for _ in range(40_000)]
        assert np.var(z_samples) > np.var(u_samples)

    def test_invalid_popularity(self):
        with pytest.raises(ValueError):
            HerdWorkload(key_popularity="pareto")


class TestSourceSkew:
    def test_skewed_sources_concentrate(self):
        from collections import Counter

        env = Environment()
        chip = Chip(
            env, ChipConfig(num_nodes=65),
            MicrobenchProgram(MicrobenchCosts.lean()), RngRegistry(0),
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        seen = Counter()
        original = chip.submit_message

        def tracking_submit(msg):
            seen[msg.src_node] += 1
            original(msg)

        chip.submit_message = tracking_submit
        TrafficGenerator(
            chip, SyntheticWorkload("fixed"), 5e6, 5_000, RngRegistry(0),
            source_skew=1.2,
        )
        chip.env.run()
        counts = sorted(seen.values(), reverse=True)
        # Rank-0 sender dominates under Zipf(1.2) over 64 senders.
        assert counts[0] > 5 * (sum(counts) / len(counts))

    def test_zero_skew_is_uniform(self):
        env = Environment()
        chip = Chip(
            env, ChipConfig(num_nodes=65),
            MicrobenchProgram(MicrobenchCosts.lean()), RngRegistry(0),
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        traffic = TrafficGenerator(
            chip, SyntheticWorkload("fixed"), 5e6, 100, RngRegistry(0),
        )
        assert traffic._source_probs is None

    def test_negative_skew_rejected(self):
        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        with pytest.raises(ValueError):
            TrafficGenerator(
                chip, SyntheticWorkload("fixed"), 1e6, 10, RngRegistry(0),
                source_skew=-1.0,
            )


class TestClosedLoopClients:
    def build(self, num_clients=32, requests_per_client=100, think_time_ns=0.0):
        from repro.workloads import ClosedLoopClients

        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        clients = ClosedLoopClients(
            chip,
            SyntheticWorkload("exponential"),
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            rngs=RngRegistry(0),
            think_time_ns=think_time_ns,
        )
        return chip, clients

    def test_all_requests_complete(self):
        chip, clients = self.build()
        chip.env.run()
        assert chip.stats.completed == 32 * 100
        assert clients.generated == 32 * 100

    def test_self_throttling_bounds_in_flight(self):
        # Closed loop: in-flight <= num_clients at all times, so the
        # shared CQ can never grow beyond clients - cores.
        chip, _clients = self.build(num_clients=40)
        chip.env.run()
        assert chip.dispatchers[0].max_shared_cq_depth <= 40

    def test_more_clients_more_throughput_until_capacity(self):
        throughputs = []
        for clients in (4, 16, 64):
            chip, _c = self.build(num_clients=clients, requests_per_client=150)
            chip.env.run()
            throughputs.append(chip.stats.completed / chip.env.now)
        assert throughputs[0] < throughputs[1] < throughputs[2]

    def test_think_time_reduces_throughput(self):
        chip_eager, _ = self.build(think_time_ns=0.0)
        chip_eager.env.run()
        eager_rate = chip_eager.stats.completed / chip_eager.env.now
        chip_idle, _ = self.build(think_time_ns=5_000.0)
        chip_idle.env.run()
        idle_rate = chip_idle.stats.completed / chip_idle.env.now
        assert idle_rate < 0.6 * eager_rate

    def test_validation(self):
        from repro.workloads import ClosedLoopClients

        env = Environment()
        chip = Chip(
            env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
        rngs = RngRegistry(0)
        workload = SyntheticWorkload("fixed")
        with pytest.raises(ValueError):
            ClosedLoopClients(chip, workload, 0, 10, rngs)
        with pytest.raises(ValueError):
            ClosedLoopClients(chip, workload, 10, 0, rngs)
        with pytest.raises(ValueError):
            ClosedLoopClients(chip, workload, 10, 10, rngs, think_time_ns=-1.0)
        with pytest.raises(ValueError, match="send slots"):
            ClosedLoopClients(chip, workload, 10**6, 10, rngs)
