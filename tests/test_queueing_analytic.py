"""Closed-form queueing formulas against textbook values."""

import math

import pytest

from repro.queueing import (
    erlang_c,
    mg1_mean_sojourn,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_sojourn_percentile,
    mmc_mean_sojourn,
    mmc_mean_wait,
    mmc_wait_percentile,
)


class TestMM1:
    def test_mean_sojourn(self):
        # Classic: λ=0.5, µ=1 → W = 1/(1-0.5) = 2.
        assert mm1_mean_sojourn(0.5, 1.0) == pytest.approx(2.0)

    def test_percentile_median(self):
        # Sojourn ~ Exp(µ-λ); median = ln(2)/(µ-λ).
        assert mm1_sojourn_percentile(0.5, 1.0, 0.5) == pytest.approx(
            math.log(2.0) / 0.5
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1_mean_sojourn(1.0, 1.0)

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            mm1_sojourn_percentile(0.5, 1.0, 1.0)


class TestErlangC:
    def test_single_server_equals_rho(self):
        # For c=1, P(wait) = ρ.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_known_value(self):
        # Textbook: c=2, a=1 → ErlangC = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_zero_load(self):
        assert erlang_c(8, 0.0) == 0.0

    def test_monotone_in_load(self):
        values = [erlang_c(16, a) for a in (4.0, 8.0, 12.0, 15.0)]
        assert values == sorted(values)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(4, 4.0)


class TestMMC:
    def test_c1_reduces_to_mm1(self):
        lam, mu = 0.6, 1.0
        assert mmc_mean_sojourn(1, lam, mu) == pytest.approx(
            mm1_mean_sojourn(lam, mu)
        )

    def test_mean_wait_known_value(self):
        # M/M/2 with λ=1, µ=1: P(wait)=1/3, wait = (1/3)/(2-1) = 1/3.
        assert mmc_mean_wait(2, 1.0, 1.0) == pytest.approx(1.0 / 3.0)

    def test_wait_percentile_zero_below_mass(self):
        # With P(wait) = 1/3, the 50th percentile of wait is 0.
        assert mmc_wait_percentile(2, 1.0, 1.0, 0.5) == 0.0

    def test_wait_percentile_positive_in_tail(self):
        p99 = mmc_wait_percentile(2, 1.0, 1.0, 0.99)
        assert p99 > 0
        # P(W > t) = P_wait * exp(-(cµ-λ)t); invert at 0.01.
        expected = math.log((1.0 / 3.0) / 0.01) / 1.0
        assert p99 == pytest.approx(expected)

    def test_more_servers_less_wait(self):
        # Same utilization 0.8, scaling λ with c.
        waits = [mmc_mean_wait(c, 0.8 * c, 1.0) for c in (1, 2, 4, 16)]
        assert waits == sorted(waits, reverse=True)


class TestMG1:
    def test_exponential_reduces_to_mm1(self):
        lam, mean = 0.7, 1.0
        # Exp service: E[S^2] = 2 mean^2.
        assert mg1_mean_sojourn(lam, mean, 2.0 * mean**2) == pytest.approx(
            mm1_mean_sojourn(lam, 1.0 / mean)
        )

    def test_deterministic_halves_the_wait(self):
        lam, mean = 0.7, 1.0
        exponential = mg1_mean_wait(lam, mean, 2.0 * mean**2)
        deterministic = mg1_mean_wait(lam, mean, mean**2)
        assert deterministic == pytest.approx(exponential / 2.0)

    def test_invalid_second_moment(self):
        with pytest.raises(ValueError):
            mg1_mean_wait(0.5, 1.0, 0.5)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mg1_mean_wait(1.5, 1.0, 2.0)


class TestValidationHarness:
    def test_simulator_matches_closed_forms(self):
        from repro.queueing import run_validation

        rows = run_validation(num_requests=200_000, seed=3)
        assert len(rows) >= 10
        worst = max(row.relative_error for row in rows)
        assert worst < 0.10
        # Low-utilization rows converge much tighter.
        easy = [r for r in rows if "rho=0.3" in r.system]
        assert all(row.relative_error < 0.03 for row in easy)

    def test_row_fields(self):
        from repro.queueing import ValidationRow

        row = ValidationRow("sys", "mean", analytic=2.0, simulated=2.1)
        assert row.relative_error == pytest.approx(0.05)

    def test_sample_size_guard(self):
        from repro.queueing import run_validation

        with pytest.raises(ValueError):
            run_validation(num_requests=10)


class TestApproximations:
    def test_allen_cunneen_reduces_to_mmc(self):
        from repro.queueing import mgc_mean_wait_allen_cunneen

        # cs^2 = 1 (exponential) → exactly M/M/c.
        assert mgc_mean_wait_allen_cunneen(
            4, 2.8, 1.0, 1.0
        ) == pytest.approx(mmc_mean_wait(4, 2.8, 1.0))

    def test_allen_cunneen_reduces_to_pk_for_c1(self):
        from repro.queueing import mg1_mean_wait, mgc_mean_wait_allen_cunneen

        # Deterministic service: cs^2 = 0, E[S^2] = E[S]^2.
        assert mgc_mean_wait_allen_cunneen(
            1, 0.7, 1.0, 0.0
        ) == pytest.approx(mg1_mean_wait(0.7, 1.0, 1.0))

    def test_allen_cunneen_vs_simulation(self):
        import numpy as np

        from repro.queueing import (
            mgc_mean_wait_allen_cunneen,
            poisson_arrivals,
            sojourn_times,
        )

        rng = np.random.default_rng(5)
        n = 300_000
        servers, rho = 16, 0.8
        arrivals = poisson_arrivals(rng, rho * servers, n)
        # Gamma service with cs^2 = 0.5, mean 1.
        services = rng.gamma(2.0, 0.5, n)
        sojourns = sojourn_times(arrivals, services, servers, warmup_fraction=0.1)
        sim_wait = float(sojourns.mean()) - 1.0
        approx_wait = mgc_mean_wait_allen_cunneen(servers, rho * servers, 1.0, 0.5)
        assert sim_wait == pytest.approx(approx_wait, rel=0.15)

    def test_kingman_exact_for_mm1(self):
        from repro.queueing import gg1_mean_wait_kingman

        lam = 0.7
        # M/M/1: ca^2 = cs^2 = 1 → W = rho/(1-rho) * E[S].
        expected = mm1_mean_sojourn(lam, 1.0) - 1.0
        assert gg1_mean_wait_kingman(lam, 1.0, 1.0, 1.0) == pytest.approx(expected)

    def test_kingman_lower_variability_less_wait(self):
        from repro.queueing import gg1_mean_wait_kingman

        smooth = gg1_mean_wait_kingman(0.8, 1.0, 0.2, 0.2)
        bursty = gg1_mean_wait_kingman(0.8, 1.0, 2.0, 2.0)
        assert smooth < bursty

    def test_validation(self):
        from repro.queueing import (
            gg1_mean_wait_kingman,
            mgc_mean_wait_allen_cunneen,
        )

        with pytest.raises(ValueError):
            mgc_mean_wait_allen_cunneen(4, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            mgc_mean_wait_allen_cunneen(4, 1.0, 1.0, -1.0)
        with pytest.raises(ValueError):
            gg1_mean_wait_kingman(1.0, 1.0, 1.0, 1.0)  # unstable


class TestExactMMCSojourn:
    def test_c1_matches_mm1_formula(self):
        from repro.queueing import mmc_sojourn_percentile

        assert mmc_sojourn_percentile(1, 0.7, 1.0, 0.99) == pytest.approx(
            mm1_sojourn_percentile(0.7, 1.0, 0.99), rel=1e-8
        )

    def test_cdf_properties(self):
        from repro.queueing import mmc_sojourn_cdf

        assert mmc_sojourn_cdf(16, 12.8, 1.0, -1.0) == 0.0
        assert mmc_sojourn_cdf(16, 12.8, 1.0, 0.0) == pytest.approx(0.0)
        values = [mmc_sojourn_cdf(16, 12.8, 1.0, t) for t in (0.5, 1, 2, 4, 8)]
        assert values == sorted(values)  # monotone
        assert mmc_sojourn_cdf(16, 12.8, 1.0, 100.0) == pytest.approx(1.0)

    def test_percentile_matches_simulation(self):
        import numpy as np

        from repro.queueing import (
            mmc_sojourn_percentile,
            poisson_arrivals,
            sojourn_times,
        )

        rng = np.random.default_rng(6)
        c, rho, n = 16, 0.8, 400_000
        arrivals = poisson_arrivals(rng, rho * c, n)
        services = rng.exponential(1.0, n)
        sojourns = sojourn_times(arrivals, services, c, warmup_fraction=0.1)
        for quantile in (0.5, 0.9, 0.99):
            exact = mmc_sojourn_percentile(c, rho * c, 1.0, quantile)
            simulated = float(np.percentile(sojourns, quantile * 100))
            assert simulated == pytest.approx(exact, rel=0.03), quantile

    def test_anchors_fig2a_exponential_curve(self):
        # The theoretical Fig. 2a exponential curves are closed-form at
        # both extremes: 1x16 = M/M/16, and each 16x1 queue = M/M/1.
        from repro.dists import Exponential
        from repro.queueing import QueueingSystem, mmc_sojourn_percentile

        load = 0.8
        single = QueueingSystem(1, 16, Exponential(1.0), seed=7).run(
            load, num_requests=300_000
        )
        exact_single = mmc_sojourn_percentile(16, load * 16, 1.0, 0.99)
        assert single.p99 == pytest.approx(exact_single, rel=0.05)

        partitioned = QueueingSystem(16, 1, Exponential(1.0), seed=7).run(
            load, num_requests=300_000
        )
        exact_partitioned = mmc_sojourn_percentile(1, load, 1.0, 0.99)
        assert partitioned.p99 == pytest.approx(exact_partitioned, rel=0.05)

    def test_invalid_quantile(self):
        from repro.queueing import mmc_sojourn_percentile

        with pytest.raises(ValueError):
            mmc_sojourn_percentile(4, 2.0, 1.0, 1.0)
