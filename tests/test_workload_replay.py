"""Trace replay workload."""

import io

import numpy as np
import pytest

from repro import MicrobenchCosts, RpcValetSystem, SingleQueue
from repro.workloads import TraceWorkload, load_service_trace

RNG = lambda: np.random.default_rng(9)  # noqa: E731


class TestLoader:
    def test_load_with_labels(self):
        csv_text = "service_ns,label\n100,get\n90000,scan\n110,get\n"
        services, labels = load_service_trace(io.StringIO(csv_text))
        assert services == [100.0, 90000.0, 110.0]
        assert labels == ["get", "scan", "get"]

    def test_load_without_labels(self):
        csv_text = "service_ns\n100\n200\n"
        services, labels = load_service_trace(io.StringIO(csv_text))
        assert services == [100.0, 200.0]
        assert labels is None

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("service_ns\n42\n")
        services, _labels = load_service_trace(path)
        assert services == [42.0]

    def test_bad_inputs(self):
        with pytest.raises(ValueError, match="column"):
            load_service_trace(io.StringIO("duration\n1\n"))
        with pytest.raises(ValueError, match="bad service time"):
            load_service_trace(io.StringIO("service_ns\nfast\n"))
        with pytest.raises(ValueError, match="negative"):
            load_service_trace(io.StringIO("service_ns\n-5\n"))
        with pytest.raises(ValueError, match="empty"):
            load_service_trace(io.StringIO("service_ns\n"))


class TestTraceWorkload:
    def test_sequential_preserves_order_and_wraps(self):
        workload = TraceWorkload([1.0, 2.0, 3.0])
        rng = RNG()
        draws = [workload.sample(rng)[0] for _ in range(7)]
        assert draws == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]
        assert workload.wraps == 2
        assert len(workload) == 3

    def test_shuffle_resamples(self):
        workload = TraceWorkload([1.0, 2.0, 3.0], mode="shuffle")
        rng = RNG()
        draws = {workload.sample(rng)[0] for _ in range(200)}
        assert draws == {1.0, 2.0, 3.0}
        assert workload.wraps == 0

    def test_labels_and_slo_class(self):
        workload = TraceWorkload(
            [100.0, 90_000.0, 110.0], labels=["get", "scan", "get"]
        )
        assert workload.slo_label == "get"  # majority class
        assert workload.slo_mean_processing_ns == pytest.approx(105.0)
        assert workload.mean_processing_ns == pytest.approx(30_070.0)

    def test_explicit_slo_label(self):
        workload = TraceWorkload(
            [1.0, 2.0], labels=["a", "b"], slo_label="b"
        )
        assert workload.slo_mean_processing_ns == 2.0

    def test_from_csv(self):
        workload = TraceWorkload.from_csv(
            io.StringIO("service_ns,label\n500,rpc\n600,rpc\n")
        )
        assert workload.mean_processing_ns == pytest.approx(550.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceWorkload([])
        with pytest.raises(ValueError):
            TraceWorkload([-1.0])
        with pytest.raises(ValueError):
            TraceWorkload([1.0], labels=["a", "b"])
        with pytest.raises(ValueError):
            TraceWorkload([1.0], mode="random")

    def test_end_to_end_on_the_simulator(self):
        # A measured-looking trace drives the full system.
        rng = np.random.default_rng(3)
        services = rng.gamma(4.0, 82.5, 4_000)  # HERD-like
        workload = TraceWorkload(services, mode="shuffle")
        system = RpcValetSystem(
            SingleQueue(), workload, costs=MicrobenchCosts.lean(), seed=2
        )
        result = system.run_point(offered_mrps=15.0, num_requests=4_000)
        assert result.completed == 4_000
        assert result.mean_service_ns == pytest.approx(
            workload.mean_processing_ns + 220.0, rel=0.05
        )
