"""NI components in isolation: QPs, frontends, backends."""

import pytest

from repro.arch import (
    Chip,
    ChipConfig,
    CompletionQueueEntry,
    QueuePair,
    WorkQueueEntry,
    make_send,
)
from repro.balancing import SingleQueue
from repro.sim import Environment, RngRegistry
from repro.workloads import MicrobenchCosts, MicrobenchProgram


def build_chip(config=None):
    env = Environment()
    chip = Chip(
        env,
        config or ChipConfig(),
        MicrobenchProgram(MicrobenchCosts.lean()),
        RngRegistry(0),
    )
    SingleQueue().install(chip, RngRegistry(0).stream("dispatch"))
    return chip


class TestQueuePair:
    def test_wqe_kinds(self):
        assert WorkQueueEntry("send").op == "send"
        assert WorkQueueEntry("replenish").op == "replenish"
        with pytest.raises(ValueError):
            WorkQueueEntry("teleport")

    def test_cqe_payload(self):
        cqe = CompletionQueueEntry("message", payload=123)
        assert cqe.kind == "message"
        assert cqe.payload == 123

    def test_cq_depth_high_water(self):
        env = Environment()
        qp = QueuePair(env, core_id=0)
        for index in range(3):
            qp.post_cqe(index)
        env.run()
        assert qp.max_cq_depth == 3
        assert len(qp.cq) == 3

    def test_wq_post(self):
        env = Environment()
        qp = QueuePair(env, core_id=0)
        qp.post_wqe(WorkQueueEntry("send", payload="x"))
        env.run()
        assert len(qp.wq) == 1


class TestNIFrontend:
    def test_deliver_counts_cqes(self):
        chip = build_chip()
        msg = make_send(chip.config, 0, 0, 0, 128, 100.0)
        chip.submit_message(msg)
        chip.env.run()
        total_cqes = sum(fe.cqes_written for fe in chip.frontends)
        assert total_cqes == 1
        assert chip.frontends[msg.core_id].cqes_written == 1


class TestNIBackend:
    def test_pipeline_occupancy_serializes(self):
        # Two back-to-back 8-packet messages on the same backend must
        # be reassembled strictly one after the other.
        config = ChipConfig(num_backends=1)
        chip = build_chip(config)
        first = make_send(chip.config, 0, 0, 0, 512, 100.0)
        second = make_send(chip.config, 1, 0, 1, 512, 100.0)
        chip.submit_message(first)
        chip.submit_message(second)
        chip.env.run()
        occupancy = config.backend_fixed_ns + 8 * config.backend_per_packet_ns
        assert first.t_reassembled == pytest.approx(occupancy)
        assert second.t_reassembled == pytest.approx(2 * occupancy)

    def test_busy_time_accounted(self):
        config = ChipConfig(num_backends=1, model_reply_egress=False)
        chip = build_chip(config)
        msg = make_send(chip.config, 0, 0, 0, 128, 100.0)
        chip.submit_message(msg)
        chip.env.run()
        backend = chip.backends[0]
        assert backend.messages_reassembled == 1
        assert backend.busy_ns == pytest.approx(
            config.backend_fixed_ns + 2 * config.backend_per_packet_ns
        )

    def test_reply_egress_hits_backend(self):
        chip = build_chip(ChipConfig(model_reply_egress=True))
        msg = make_send(chip.config, 0, 0, 0, 128, 100.0)
        chip.submit_message(msg)
        chip.env.run()
        assert sum(b.replies_sent for b in chip.backends) == 1

    def test_reply_egress_disabled(self):
        chip = build_chip(ChipConfig(model_reply_egress=False))
        msg = make_send(chip.config, 0, 0, 0, 128, 100.0)
        chip.submit_message(msg)
        chip.env.run()
        assert sum(b.replies_sent for b in chip.backends) == 0

    def test_messages_spread_across_backends(self):
        chip = build_chip()
        for msg_id in range(64):
            msg = make_send(
                chip.config, msg_id, msg_id % 199, 0, 128, 50.0
            )
            chip.submit_message(msg)
        chip.env.run()
        handled = [b.messages_reassembled for b in chip.backends]
        assert sum(handled) == 64
        assert all(count > 0 for count in handled)


class TestProtocolValidation:
    def test_make_send_validates_ranges(self):
        config = ChipConfig()
        with pytest.raises(ValueError):
            make_send(config, 0, 199, 0, 128, 1.0)  # src out of range
        with pytest.raises(ValueError):
            make_send(config, 0, 0, 32, 128, 1.0)  # slot out of range

    def test_send_message_validates(self):
        from repro.arch import SendMessage

        with pytest.raises(ValueError):
            SendMessage(0, 0, 0, 128, 2, service_ns=-1.0)
        with pytest.raises(ValueError):
            SendMessage(0, 0, 0, 128, 0, service_ns=1.0)

    def test_latency_before_completion_raises(self):
        from repro.arch import SendMessage

        msg = SendMessage(0, 0, 0, 128, 2, 100.0)
        with pytest.raises(RuntimeError):
            _ = msg.latency_ns
        with pytest.raises(RuntimeError):
            _ = msg.queueing_ns
