"""Tiered simulation core: calendar queue, engine selection, and the
DES <-> fast <-> fluid equivalence bands documented in EXPERIMENTS.md."""

import heapq

import numpy as np
import pytest

from repro.fastpath import (
    DEFAULT_FLUID_THRESHOLD,
    ENGINES,
    CalendarQueue,
    fast_scheme_sweep,
    fluid_tail_measure,
    resolve_engine,
    simulate_cluster_fluid,
    simulate_rack_fast,
)
from repro.fastpath import fastcluster


class TestCalendarQueue:
    def test_matches_heapq_order(self):
        rng = np.random.default_rng(7)
        times = rng.exponential(50.0, size=2_000).cumsum()
        rng.shuffle(times)
        calendar = CalendarQueue(bucket_width=25.0)
        mirror = []
        for index, when in enumerate(times):
            calendar.push(float(when), index)
            heapq.heappush(mirror, (float(when), index))
        drained = []
        while calendar:
            drained.append(calendar.pop()[0])
        assert drained == sorted(drained)
        assert len(drained) == len(times)
        assert drained == [heapq.heappop(mirror)[0] for _ in range(len(times))]

    def test_interleaved_push_pop(self):
        rng = np.random.default_rng(11)
        calendar = CalendarQueue(bucket_width=1.0)
        mirror = []
        clock = 0.0
        for _ in range(500):
            if mirror and rng.random() < 0.4:
                want = heapq.heappop(mirror)[0]
                got, _payload = calendar.pop()
                assert got == want
                clock = got
            else:
                when = clock + float(rng.exponential(3.0))
                calendar.push(when, None)
                heapq.heappush(mirror, (when, None))
        while mirror:
            assert calendar.pop()[0] == heapq.heappop(mirror)[0]

    def test_peek_does_not_consume(self):
        calendar = CalendarQueue(bucket_width=1.0)
        calendar.push(3.0, "a")
        assert calendar.peek_time() == 3.0
        assert calendar.peek_time() == 3.0
        assert calendar.pop() == (3.0, "a")
        assert not calendar


class TestEngineSelection:
    def test_known_engines(self):
        assert ENGINES == ("des", "fast", "fluid", "auto")

    def test_explicit_engines_pass_through(self):
        for engine in ("des", "fast", "fluid"):
            assert resolve_engine(engine, 4) == engine
            assert resolve_engine(engine, 10_000) == engine

    def test_auto_switches_at_threshold(self):
        assert resolve_engine("auto", DEFAULT_FLUID_THRESHOLD) == "fast"
        assert resolve_engine("auto", DEFAULT_FLUID_THRESHOLD + 1) == "fluid"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("warp", 4)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fluid")
        assert resolve_engine("fast", 4) == "fluid"
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ValueError):
            resolve_engine("fast", 4)


class TestFastDeterminism:
    def test_same_seed_bit_identical(self):
        runs = [
            simulate_rack_fast(
                4, policy="jsq2", per_node_mrps=24.0,
                requests_per_node=800, seed=3,
            )
            for _ in range(2)
        ]
        assert runs[0].aggregate.mean == runs[1].aggregate.mean
        assert runs[0].p99_ns == runs[1].p99_ns
        assert runs[0].per_node_completed == runs[1].per_node_completed

    def test_seed_actually_matters(self):
        a = simulate_rack_fast(4, policy="random", requests_per_node=800, seed=0)
        b = simulate_rack_fast(4, policy="random", requests_per_node=800, seed=1)
        assert a.aggregate.mean != b.aggregate.mean

    def test_fast_sweep_worker_count_invariant(self):
        """fast_scheme_sweep seeds per (experiment, label, index), so the
        points are independent of any fan-out — recomputing one point in
        isolation must reproduce the full-sweep value bit-for-bit."""
        from repro.dists import synthetic

        loads = [4.0, 8.0, 12.0]
        full = fast_scheme_sweep(
            "1x16", synthetic("fixed"), loads, 2_000, 0, 700.0, label="one"
        )
        lone = fast_scheme_sweep(
            "1x16", synthetic("fixed"), loads[1:2], 2_000, 0, 700.0, label="one"
        )
        # Index participates in the seed: point 1 recomputed as index 0
        # differs, the full sweep re-run matches.
        again = fast_scheme_sweep(
            "1x16", synthetic("fixed"), loads, 2_000, 0, 700.0, label="one"
        )
        for mine, theirs in zip(full.points, again.points):
            assert mine.summary.p99 == theirs.summary.p99
            assert mine.achieved_throughput == theirs.achieved_throughput
        assert (
            lone.points[0].achieved_throughput
            != full.points[1].achieved_throughput
        )

    def test_inlined_jsq_matches_policy_object_path(self, monkeypatch):
        """The bisect-based JSQ(d) loop must replay PowerOfD.choose's
        exact variate sequence; defeating the isinstance gate forces the
        generic path, and the results must be bit-identical."""
        kwargs = dict(
            num_nodes=4, policy="jsq2", signal="piggyback",
            per_node_mrps=24.0, requests_per_node=600, seed=5,
        )
        inlined = simulate_rack_fast(**kwargs)

        class _NeverMatches:
            pass

        monkeypatch.setattr(fastcluster, "PowerOfD", _NeverMatches)
        generic = simulate_rack_fast(**kwargs)
        assert inlined.aggregate.mean == generic.aggregate.mean
        assert inlined.p99_ns == generic.p99_ns
        assert inlined.per_node_completed == generic.per_node_completed


class TestDesFastEquivalence:
    """Tolerance bands from EXPERIMENTS.md ("Engine tiers"): the fast
    tier tracks the DES cluster within 15% on mean and p99 at the
    mid-load operating point the rack sweeps use."""

    @pytest.mark.parametrize("policy", ["random", "jsq2"])
    def test_mid_load_band(self, policy):
        from repro.balancing import SingleQueue
        from repro.cluster import Cluster
        from repro.rack import RackRouter

        cluster = Cluster(
            num_nodes=4,
            scheme_factory=SingleQueue,
            seed=0,
            router=RackRouter(policy, "fresh"),
        )
        des = cluster.run(per_node_mrps=24.0, requests_per_node=1_200)
        fast = simulate_rack_fast(
            4, policy=policy, per_node_mrps=24.0,
            requests_per_node=1_200, seed=0,
        )
        assert fast.aggregate.mean == pytest.approx(
            des.aggregate.mean, rel=0.15
        )
        assert fast.p99_ns == pytest.approx(des.p99_ns, rel=0.15)


class TestFluidTier:
    def test_tail_measure_shape(self):
        s = fluid_tail_measure(12.0, 16, choices=2)
        assert s[0] == 1.0
        assert np.all(np.diff(s) <= 1e-12)
        assert np.all((s >= 0.0) & (s <= 1.0))
        # Flow balance at the fixed point: total drain equals arrivals.
        drain = np.minimum(np.arange(1, s.size), 16)
        assert float((drain * (s[1:] - np.append(s[2:], 0.0))).sum()) == (
            pytest.approx(12.0, rel=1e-3)
        )

    def test_more_choices_thinner_tail(self):
        d1 = fluid_tail_measure(13.0, 16, choices=1)
        d2 = fluid_tail_measure(13.0, 16, choices=2)
        deep = 24  # well past the server count
        assert d2[deep] <= d1[deep]

    def test_unstable_load_rejected(self):
        with pytest.raises(ValueError):
            fluid_tail_measure(16.0, 16, choices=2)
        with pytest.raises(ValueError):
            simulate_cluster_fluid(64, per_node_mrps=50.0, mean_service_ns=400.0)

    def test_random_matches_erlang_c_mean(self):
        """With exponential service the random-policy fluid node is an
        exact M/M/c; its mean sojourn must match the analytic formula."""
        from repro.queueing.analytic import erlang_c

        cores, mean_ns, mrps = 16, 500.0, 24.0
        offered = mrps * 1e-3 * mean_ns
        result = simulate_cluster_fluid(
            64, policy="random", per_node_mrps=mrps, cores=cores,
            mean_service_ns=mean_ns, seed=1,
        )
        wait = erlang_c(cores, offered) * mean_ns / (cores - offered)
        assert result.aggregate.mean == pytest.approx(mean_ns + wait, rel=0.02)

    def test_fluid_tracks_fast_at_overlap(self):
        """Cross-tier band at a size both tiers can run: p99 within 15%
        (measured agreement is ~2% at 64 nodes, see EXPERIMENTS.md)."""
        from repro.workloads import HerdWorkload

        workload = HerdWorkload()
        overhead, _shift = fastcluster.calibrated_scheme_profile("1x16", 16)
        fast = simulate_rack_fast(
            32, policy="jsq2", per_node_mrps=24.0,
            requests_per_node=1_000, seed=0,
        )
        fluid = simulate_cluster_fluid(
            32, policy="jsq2", per_node_mrps=24.0,
            mean_service_ns=workload.mean_processing_ns + overhead,
            seed=0, workload=workload, overhead_ns=overhead,
        )
        assert fluid.p99_ns == pytest.approx(fast.p99_ns, rel=0.15)
        assert fluid.aggregate.mean == pytest.approx(
            fast.aggregate.mean, rel=0.15
        )

    def test_fluid_is_deterministic(self):
        runs = [
            simulate_cluster_fluid(256, policy="jsq2", seed=9)
            for _ in range(2)
        ]
        assert runs[0].aggregate.mean == runs[1].aggregate.mean
        assert runs[0].p99_ns == runs[1].p99_ns


class TestFastChipAchieved:
    def test_stable_load_tracks_offered(self):
        """The DES-mirroring achieved metric must report ~offered load
        for a clearly stable point (this gate drives the headline run's
        sustained-tail filter)."""
        from repro.dists import synthetic

        sweep = fast_scheme_sweep(
            "1x16", synthetic("fixed"), [8.0], 20_000, 0, 600.0, label="s"
        )
        point = sweep.points[0]
        assert point.achieved_throughput == pytest.approx(8.0, rel=0.05)

    def test_saturated_load_capped(self):
        from repro.dists import synthetic

        # Capacity is 16 / 0.6us ~ 26.7 MRPS; offer 40.
        sweep = fast_scheme_sweep(
            "1x16", synthetic("fixed"), [40.0], 20_000, 0, 600.0, label="s"
        )
        point = sweep.points[0]
        assert point.achieved_throughput < 0.9 * 40.0


class TestScaleDriver:
    def test_smoke_run(self):
        from repro.experiments.scale import run_scale

        result = run_scale("smoke", seed=0)
        assert result.data["largest_nodes"] == 1024
        assert result.data["advantage_at_largest"] > 1.0
        for entry in result.data["overlap"].values():
            assert abs(entry["p99_delta"]) < 0.15
        # Every grid size reports a wall clock.
        for row in result.data["points"].values():
            assert row["wall_s"] >= 0.0
