"""Fault injection: plans, injector, robust clients, determinism.

The contract under test, in rough order of importance:

1. accounting is conservative — every offered RPC ends exactly once,
   as a completion or a loss, under any mix of crashes, drops,
   duplications, delay spikes, retries, and hedges;
2. a faulted run is a pure function of (plan, retry config, seed) —
   bit-identical across repeats and worker counts;
3. the three calibrated phenomena the ``ext-faults`` driver reports
   (graceful crash-ladder degradation, retry-storm tail inflation,
   hedging's low-load win / saturation tax) actually hold;
4. the individual pieces (plan validation, timeline materialization,
   injector state, failure detector) behave.
"""

import math
from dataclasses import asdict

import pytest

from repro.cluster import Cluster
from repro.experiments.faults import _run_faults_task
from repro.faults import (
    FabricDegradation,
    FaultPlan,
    NodeCrash,
    NodeSlowdown,
    RetryConfig,
    SignalBlackout,
)
from repro.rack import RackRouter
from repro.runner import map_points, task_seed


def _run(
    seed=0,
    faults=None,
    retry=None,
    router=None,
    mrps=12.0,
    requests=400,
    num_nodes=3,
):
    cluster = Cluster(
        num_nodes=num_nodes,
        seed=seed,
        router=router,
        faults=faults,
        retry=retry,
    )
    return cluster.run(per_node_mrps=mrps, requests_per_node=requests)


class TestFaultPlanValidation:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            NodeCrash(node=-1, at_ns=0.0)
        with pytest.raises(ValueError):
            NodeCrash(node=0, at_ns=10.0, outage_ns=0.0)
        with pytest.raises(ValueError):
            NodeSlowdown(node=0, at_ns=0.0, duration_ns=10.0, factor=0.0)
        with pytest.raises(ValueError):
            NodeSlowdown(node=0, at_ns=0.0, duration_ns=0.0)
        with pytest.raises(ValueError):
            FabricDegradation(at_ns=0.0, duration_ns=10.0, drop_prob=1.5)
        with pytest.raises(ValueError):
            SignalBlackout(at_ns=-1.0, duration_ns=10.0)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate_hz=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.1)
        with pytest.raises(ValueError):
            FaultPlan(slowdown_factor=0.0)

    def test_triviality_and_noise_flags(self):
        assert FaultPlan().is_trivial
        assert not FaultPlan(crash_rate_hz=1.0).is_trivial
        assert not FaultPlan(events=(SignalBlackout(0.0, 1.0),)).is_trivial
        assert FaultPlan(drop_prob=0.1).has_fabric_noise
        assert not FaultPlan(crash_rate_hz=1.0).has_fabric_noise

    def test_retry_config(self):
        config = RetryConfig(
            backoff_ns=100.0, backoff_factor=2.0, max_backoff_ns=350.0
        )
        assert config.backoff_for(0) == 100.0
        assert config.backoff_for(1) == 200.0
        assert config.backoff_for(5) == 350.0  # capped
        assert RetryConfig(max_retries=None).retry_budget == float("inf")
        assert RetryConfig(max_retries=0).retry_budget == 0.0
        with pytest.raises(ValueError):
            RetryConfig(timeout_ns=0.0)
        with pytest.raises(ValueError):
            RetryConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryConfig(backoff_ns=500.0, max_backoff_ns=100.0)
        with pytest.raises(ValueError):
            RetryConfig(hedge_ns=0.0)


class TestFaultPlanMaterialize:
    PLAN = FaultPlan(crash_rate_hz=8e3, slowdown_rate_hz=4e3)

    def test_same_seed_same_timeline(self):
        a = self.PLAN.materialize(4, 500_000.0, seed=7)
        b = self.PLAN.materialize(4, 500_000.0, seed=7)
        assert a == b and len(a) > 0

    def test_different_seed_different_timeline(self):
        a = self.PLAN.materialize(4, 500_000.0, seed=7)
        b = self.PLAN.materialize(4, 500_000.0, seed=8)
        assert a != b

    def test_timeline_sorted_and_within_horizon(self):
        events = self.PLAN.materialize(4, 500_000.0, seed=7)
        times = [event.at_ns for event in events]
        assert times == sorted(times)
        assert all(event.at_ns < 500_000.0 for event in events)

    def test_outages_do_not_overlap_per_node(self):
        events = self.PLAN.materialize(2, 2_000_000.0, seed=3)
        for node in range(2):
            crashes = [
                e for e in events
                if isinstance(e, NodeCrash) and e.node == node
            ]
            for earlier, later in zip(crashes, crashes[1:]):
                assert later.at_ns > earlier.at_ns + earlier.outage_ns

    def test_explicit_events_pass_through(self):
        crash = NodeCrash(node=0, at_ns=100.0, outage_ns=50.0)
        plan = FaultPlan(events=(crash,))
        assert plan.materialize(2, 1_000.0, seed=0) == [crash]

    def test_trivial_plan_materializes_empty(self):
        assert FaultPlan().materialize(4, 1e6, seed=0) == []


class TestConservation:
    """Every offered RPC ends exactly once, whatever goes wrong."""

    def test_trivial_plan_completes_everything(self):
        result = _run(faults=FaultPlan(), retry=RetryConfig())
        stats = result.fault_stats
        assert result.offered == 3 * 400
        assert stats.completed == result.offered
        assert result.lost == 0 and stats.timeouts == 0 and stats.retries == 0
        assert result.goodput_fraction == 1.0
        assert not result.e2e.is_empty

    def test_drops_are_retried_and_conserved(self):
        result = _run(faults=FaultPlan(drop_prob=0.1), retry=RetryConfig())
        stats = result.fault_stats
        assert stats.msg_drops > 0 and stats.retries > 0
        assert stats.completed + result.lost == result.offered

    def test_duplication_is_reconciled(self):
        result = _run(faults=FaultPlan(dup_prob=0.3), retry=RetryConfig())
        stats = result.fault_stats
        assert stats.msg_dups > 0
        assert stats.completed == result.offered and result.lost == 0

    def test_delay_spikes_are_absorbed(self):
        result = _run(
            faults=FaultPlan(spike_prob=0.3, spike_ns=3_000.0),
            retry=RetryConfig(),
        )
        stats = result.fault_stats
        assert stats.delay_spikes > 0
        assert stats.completed + result.lost == result.offered

    def test_total_loss_yields_empty_summary_not_a_crash(self):
        result = _run(
            faults=FaultPlan(drop_prob=1.0),
            retry=RetryConfig(timeout_ns=2_000.0, max_retries=1),
            requests=100,
            num_nodes=2,
        )
        assert result.offered == 200
        assert result.lost == 200 and result.fault_stats.completed == 0
        assert result.goodput_fraction == 0.0
        assert result.e2e.is_empty and math.isnan(result.e2e.p99)

    def test_hedging_reconciles_duplicate_completions(self):
        result = _run(
            retry=RetryConfig(hedge_ns=500.0), mrps=20.0, requests=600
        )
        stats = result.fault_stats
        assert stats.hedges > 0
        assert stats.completed == result.offered and result.lost == 0
        assert stats.duplicate_completions > 0

    def test_explicit_crash_with_recovery(self):
        plan = FaultPlan(
            events=(NodeCrash(node=1, at_ns=10_000.0, outage_ns=15_000.0),)
        )
        result = _run(faults=plan, retry=RetryConfig(timeout_ns=5_000.0))
        stats = result.fault_stats
        assert stats.crashes == 1 and stats.recoveries == 1
        assert stats.crash_drops > 0
        assert stats.completed + result.lost == result.offered
        assert result.availability[1] < 1.0
        assert result.availability[0] == 1.0 and result.availability[2] == 1.0

    def test_slowdown_window_slows_but_conserves(self):
        plan = FaultPlan(
            events=(
                NodeSlowdown(
                    node=0, at_ns=0.0, duration_ns=40_000.0, factor=0.25
                ),
            )
        )
        result = _run(faults=plan, retry=RetryConfig(timeout_ns=60_000.0))
        stats = result.fault_stats
        assert stats.slowdowns == 1
        assert stats.completed == result.offered and result.lost == 0


class TestFailureDetector:
    def test_crash_is_suspected_then_readmitted(self):
        plan = FaultPlan(
            events=(NodeCrash(node=2, at_ns=20_000.0, outage_ns=25_000.0),)
        )
        router = RackRouter("jsq2", "piggyback", suspect_after_ns=4_000.0)
        result = _run(
            faults=plan,
            retry=RetryConfig(timeout_ns=8_000.0),
            router=router,
            mrps=16.0,
            requests=1_200,
            num_nodes=4,
        )
        stats = result.fault_stats
        assert stats.suspicions >= 1
        assert stats.readmissions >= 1
        assert stats.false_suspicions == 0
        assert len(stats.detection_latency_ns) >= 1
        # Detection can't beat the suspicion threshold, and the sweep
        # period bounds how far past it the detector can lag.
        assert 4_000.0 <= stats.mean_detection_ns <= 12_000.0
        assert router.stats.suspicions == stats.suspicions

    def test_signal_blackout_causes_false_suspicion(self):
        plan = FaultPlan(
            events=(SignalBlackout(at_ns=15_000.0, duration_ns=30_000.0),)
        )
        router = RackRouter("jsq2", "piggyback", suspect_after_ns=4_000.0)
        result = _run(
            faults=plan,
            retry=RetryConfig(),
            router=router,
            mrps=16.0,
            requests=800,
            num_nodes=4,
        )
        stats = result.fault_stats
        assert stats.false_suspicions >= 1
        assert stats.detection_latency_ns == []
        assert stats.completed == result.offered and result.lost == 0


def _normalize(row):
    """NaN-free copy of a task row (NaN breaks dict equality)."""
    return {
        key: None
        if isinstance(value, float) and math.isnan(value)
        else value
        for key, value in row.items()
    }


_DET_TASKS = [
    (
        "crash", 18.0,
        (("crash_rate_hz", 12e3), ("mean_outage_ns", 20_000.0)),
        (("timeout_ns", 10_000.0), ("max_retries", 2),
         ("backoff_ns", 2_000.0)),
        5_000.0, 500, task_seed("ext-faults", "crash", 0, 0),
    ),
    (
        "storm", 28.0,
        (("drop_prob", 0.04),),
        (("timeout_ns", 2_000.0), ("max_retries", None), ("backoff_ns", 0.0)),
        None, 500, task_seed("ext-faults", "storm", 0, 0),
    ),
    (
        "hedge", 12.0,
        (("drop_prob", 0.02),),
        (("timeout_ns", 15_000.0), ("max_retries", 3),
         ("backoff_ns", 2_000.0), ("hedge_ns", 1_500.0)),
        None, 500, task_seed("ext-faults", "hedge", 0, 0),
    ),
]


class TestDeterminism:
    @staticmethod
    def _rows(workers):
        outcome = map_points(_run_faults_task, _DET_TASKS, workers=workers)
        assert not outcome.failures
        rows = {}
        for row in outcome.results:
            row.pop("telemetry")
            rows[row["key"]] = _normalize(row)
        return rows

    @classmethod
    def results(cls):
        if not hasattr(cls, "_cache"):
            cls._cache = cls._rows(workers=2)
        return cls._cache

    def test_bit_identical_across_worker_counts(self):
        serial = self._rows(workers=1)
        assert serial == self.results()
        assert self._rows(workers=4) == serial

    def test_repeat_run_bit_identical(self):
        plan = FaultPlan(crash_rate_hz=12e3, drop_prob=0.02)
        retry = RetryConfig(timeout_ns=8_000.0, max_retries=2)

        def once():
            result = _run(faults=plan, retry=retry, mrps=16.0)
            return (
                result.offered,
                result.lost,
                result.e2e.p99,
                result.p99_ns,
                asdict(result.fault_stats),
            )

        assert once() == once()

    def test_seed_changes_the_run(self):
        plan = FaultPlan(crash_rate_hz=12e3, drop_prob=0.02)
        a = _run(seed=0, faults=plan, retry=RetryConfig())
        b = _run(seed=1, faults=plan, retry=RetryConfig())
        assert asdict(a.fault_stats) != asdict(b.fault_stats)


class TestPhenomena:
    """The three calibrated ``ext-faults`` findings, at test scale."""

    @staticmethod
    def _task(key, mrps, plan_kwargs, retry_kwargs, suspect=None, req=1_500):
        return (
            key, mrps, plan_kwargs, retry_kwargs, suspect, req,
            task_seed("ext-faults", key, 0, 0),
        )

    @classmethod
    def results(cls):
        if hasattr(cls, "_cache"):
            return cls._cache
        ladder_retry = (
            ("timeout_ns", 10_000.0), ("max_retries", 2),
            ("backoff_ns", 2_000.0),
        )
        tasks = [
            cls._task(
                f"crash/{rate:g}", 18.0,
                (("crash_rate_hz", rate), ("mean_outage_ns", 20_000.0)),
                ladder_retry, suspect=5_000.0,
            )
            for rate in (0.0, 12e3, 24e3)
        ] + [
            cls._task(
                "storm/bounded", 28.0, (("drop_prob", 0.04),),
                (("timeout_ns", 2_000.0), ("max_retries", 2),
                 ("backoff_ns", 6_000.0), ("backoff_factor", 2.0)),
            ),
            cls._task(
                "storm/unbounded", 28.0, (("drop_prob", 0.04),),
                (("timeout_ns", 2_000.0), ("max_retries", None),
                 ("backoff_ns", 0.0)),
            ),
        ] + [
            cls._task(
                f"hedge/{name}/{suffix}", load, (("drop_prob", 0.02),),
                (("timeout_ns", 15_000.0), ("max_retries", 3),
                 ("backoff_ns", 2_000.0), ("hedge_ns", hedge)),
            )
            for name, load in (("low", 12.0), ("high", 27.0))
            for suffix, hedge in (("plain", None), ("hedge", 1_500.0))
        ]
        outcome = map_points(_run_faults_task, tasks, workers=2)
        assert not outcome.failures
        cls._cache = {row["key"]: row for row in outcome.results}
        return cls._cache

    def test_crash_ladder_degrades_gracefully(self):
        rows = self.results()
        fractions = [
            rows[f"crash/{rate:g}"]["goodput_fraction"]
            for rate in (0.0, 12e3, 24e3)
        ]
        assert fractions[0] == 1.0
        # Graceful, not cliff-like: crashes cost goodput, but every
        # rung keeps the large majority of it (at this test scale the
        # per-rung crash draws are noisy, so we assert the floor and
        # the realized degradation, not strict monotonicity).
        assert any(fraction < 1.0 for fraction in fractions[1:])
        assert all(fraction >= 0.65 for fraction in fractions)
        crashed = [rows[f"crash/{rate:g}"] for rate in (12e3, 24e3)]
        assert sum(row["crashes"] for row in crashed) >= 2
        assert sum(row["suspicions"] for row in crashed) >= 1

    def test_unbounded_retries_storm_the_tail(self):
        rows = self.results()
        bounded, storm = rows["storm/bounded"], rows["storm/unbounded"]
        assert storm["retries"] > 5 * bounded["retries"]
        assert storm["e2e_p99_ns"] > 1.5 * bounded["e2e_p99_ns"]
        assert storm["work_amplification"] > bounded["work_amplification"] + 0.1
        assert storm["srv_p99_ns"] > bounded["srv_p99_ns"]

    def test_hedging_wins_at_low_load_and_costs_at_saturation(self):
        rows = self.results()
        low_plain, low_hedge = rows["hedge/low/plain"], rows["hedge/low/hedge"]
        high_plain = rows["hedge/high/plain"]
        high_hedge = rows["hedge/high/hedge"]
        assert low_hedge["hedges"] > 0
        assert low_hedge["e2e_p99_ns"] < 0.5 * low_plain["e2e_p99_ns"]
        assert high_hedge["e2e_p99_ns"] > high_plain["e2e_p99_ns"]
        assert high_hedge["work_amplification"] > 1.3
        assert high_plain["work_amplification"] < 1.1


class TestLegacyPathUntouched:
    def test_plain_cluster_has_no_fault_machinery(self):
        cluster = Cluster(num_nodes=2, seed=0)
        assert not cluster.robust
        assert cluster.injector is None and cluster.retry is None
        result = cluster.run(per_node_mrps=10.0, requests_per_node=200)
        assert result.fault_stats is None and result.e2e is None
        assert result.offered == 0 and result.goodput_fraction == 1.0
