"""Shared test helpers."""

import numpy as np

# numpy >= 2 renamed trapz to trapezoid.
trapezoid = getattr(np, "trapezoid", None) or np.trapz


def integrate(ys, xs):
    """Trapezoidal integral, compatible across numpy versions."""
    return float(trapezoid(ys, xs))
