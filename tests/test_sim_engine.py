"""Environment run-loop semantics."""

import pytest

from repro.sim import EmptySchedule, Environment, delayed_call


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_initial_time(self):
        assert Environment(initial_time=7.5).now == 7.5

    def test_time_advances_monotonically(self, env):
        seen = []
        for delay in (5, 1, 3):
            env.timeout(delay).add_callback(lambda e: seen.append(env.now))
        env.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_simultaneous_events_fifo(self, env):
        order = []
        for tag in range(5):
            env.timeout(2, tag).add_callback(
                lambda e: order.append(e.value)
            )
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestRun:
    def test_run_until_time_stops_clock_there(self, env):
        env.timeout(10)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_time_in_past_raises(self, env):
        env.timeout(10)
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=3)

    def test_run_until_event_returns_value(self, env):
        assert env.run(until=env.timeout(2, "v")) == "v"
        assert env.now == 2.0

    def test_run_until_already_processed_event(self, env):
        timeout = env.timeout(1, "v")
        env.run()
        assert env.run(until=timeout) == "v"

    def test_run_until_failed_event_raises(self, env):
        event = env.event()

        def failer():
            yield env.timeout(1)
            event.fail(ValueError("x"))

        env.process(failer())
        with pytest.raises(ValueError):
            env.run(until=event)

    def test_run_until_event_that_never_fires(self, env):
        event = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="ended before"):
            env.run(until=event)

    def test_run_with_empty_schedule_returns(self, env):
        assert env.run() is None

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(4)
        assert env.peek() == 4.0


class TestDelayedCall:
    def test_invokes_with_args_at_delay(self, env):
        calls = []
        delayed_call(env, 6.0, lambda a, b: calls.append((env.now, a, b)), 1, 2)
        env.run()
        assert calls == [(6.0, 1, 2)]

    def test_many_delayed_calls_ordered(self, env):
        calls = []
        for delay in (3, 1, 2):
            delayed_call(env, delay, calls.append, delay)
        env.run()
        assert calls == [1, 2, 3]
