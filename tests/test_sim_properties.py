"""Property-based tests (hypothesis) on the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, PriorityStore, Resource, Store


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
@settings(max_examples=200, deadline=None)
def test_timeouts_fire_in_sorted_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).add_callback(lambda e, d=delay: fired.append(d))
    env.run()
    assert fired == sorted(delays)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(), max_size=60))
@settings(max_examples=200, deadline=None)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield env.timeout(1)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60))
@settings(max_examples=200, deadline=None)
def test_priority_store_yields_sorted(items):
    # PriorityStore yields the smallest *currently stored* item, so the
    # globally sorted order is guaranteed only once all puts landed:
    # the consumer starts after the producer finishes.
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer(done_event):
        yield done_event
        for _ in items:
            received.append((yield store.get()))

    done = env.process(producer())
    env.process(consumer(done))
    env.run()
    assert received == sorted(items)


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=30
    ),
)
@settings(max_examples=150, deadline=None)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    concurrency = {"now": 0, "max": 0}

    def worker(hold):
        with resource.request() as req:
            yield req
            concurrency["now"] += 1
            concurrency["max"] = max(concurrency["max"], concurrency["now"])
            yield env.timeout(hold)
            concurrency["now"] -= 1

    for hold in hold_times:
        env.process(worker(hold))
    env.run()
    assert concurrency["max"] <= capacity
    assert concurrency["now"] == 0
    assert resource.count == 0


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0),
                  st.floats(min_value=0.0, max_value=10.0)),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_capacity_one_store_conserves_items(schedule):
    """Bounded store: every put eventually matched by exactly one get."""
    env = Environment()
    store = Store(env, capacity=1)
    received = []

    def producer():
        for delay, _hold in schedule:
            yield env.timeout(delay)
            yield store.put(delay)

    def consumer():
        for _ in schedule:
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert len(received) == len(schedule)
    assert len(store) == 0
