"""Rack-level two-level scheduling: policies, signals, router, driver."""

import numpy as np
import pytest

from repro.cluster import Cluster, mesh_geometry
from repro.experiments.rack import (
    STALENESS_LADDER,
    _run_rack_task,
    _scenarios,
)
from repro.rack import (
    BroadcastSignal,
    InstantSignal,
    PiggybackSignal,
    PowerOfD,
    RackRouter,
    RoundRobinPolicy,
    ShortestExpectedDelay,
    UniformRandomPolicy,
    ZipfDestinations,
    make_policy,
    make_signal,
)
from repro.runner import map_points, task_seed


class TestZipfDestinations:
    def test_uniform_when_unskewed(self):
        dests = ZipfDestinations(4, skew=0.0)
        rng = np.random.default_rng(0)
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(6_000):
            counts[dests.sample(0, rng)] += 1
        for count in counts.values():
            assert count == pytest.approx(2_000, rel=0.1)

    def test_skew_favours_node_zero(self):
        dests = ZipfDestinations(4, skew=1.2)
        rng = np.random.default_rng(1)
        samples = [dests.sample(3, rng) for _ in range(4_000)]
        share = samples.count(0) / len(samples)
        assert share > 0.45  # 1 / (1 + 2^-1.2 + 3^-1.2) ~ 0.52

    def test_never_samples_self(self):
        dests = ZipfDestinations(3, skew=2.0)
        rng = np.random.default_rng(2)
        assert all(dests.sample(0, rng) != 0 for _ in range(500))

    def test_sample_distinct(self):
        dests = ZipfDestinations(5, skew=0.5)
        rng = np.random.default_rng(3)
        chosen = dests.sample_distinct(2, 3, rng)
        assert len(set(chosen)) == 3
        assert 2 not in chosen
        # Asking for >= all peers returns the full peer list.
        assert sorted(dests.sample_distinct(2, 10, rng)) == [0, 1, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfDestinations(1)
        with pytest.raises(ValueError):
            ZipfDestinations(4, skew=-0.1)


class TestPolicies:
    def test_make_policy_specs(self):
        assert isinstance(make_policy("random"), UniformRandomPolicy)
        assert isinstance(make_policy("rr"), RoundRobinPolicy)
        assert isinstance(make_policy("sed"), ShortestExpectedDelay)
        jsq = make_policy("jsq3")
        assert isinstance(jsq, PowerOfD) and jsq.d == 3
        assert make_policy("jsq").d == 2
        with pytest.raises(ValueError):
            make_policy("lifo")
        with pytest.raises(ValueError):
            make_policy("jsqx")

    def test_round_robin_cycles_evenly(self):
        policy = RoundRobinPolicy()
        dests = ZipfDestinations(4)
        rng = np.random.default_rng(0)
        picks = [policy.choose(1, dests, {}, {}, rng) for _ in range(9)]
        assert 1 not in picks
        assert sorted(picks) == [0, 0, 0, 2, 2, 2, 3, 3, 3]

    def test_jsq_picks_least_loaded_candidate(self):
        policy = PowerOfD(3)  # d == peers: candidates are all of them
        dests = ZipfDestinations(4)
        rng = np.random.default_rng(0)
        estimates = {1: 5.0, 2: 0.0, 3: 9.0}
        assert policy.choose(0, dests, estimates, {}, rng) == 2

    def test_sed_prefers_capacity_at_equal_load(self):
        policy = ShortestExpectedDelay()
        dests = ZipfDestinations(3)
        rng = np.random.default_rng(0)
        estimates = {1: 4.0, 2: 4.0}
        capacities = {1: 1.0, 2: 2.0}
        assert policy.choose(0, dests, estimates, capacities, rng) == 2
        # Twice the capacity absorbs twice the queue for the same delay.
        estimates = {1: 2.0, 2: 7.0}
        assert policy.choose(0, dests, estimates, capacities, rng) == 1


class TestSignals:
    def test_make_signal_specs(self):
        assert isinstance(make_signal("fresh"), InstantSignal)
        assert isinstance(make_signal("piggyback"), PiggybackSignal)
        broadcast = make_signal("broadcast:2500")
        assert isinstance(broadcast, BroadcastSignal)
        assert broadcast.period_ns == 2500.0
        with pytest.raises(ValueError):
            make_signal("broadcast")
        with pytest.raises(ValueError):
            make_signal("telepathy")
        with pytest.raises(ValueError):
            BroadcastSignal(0)

    def test_instant_signal_reads_ground_truth(self):
        router = RackRouter(policy="jsq2", signal="fresh")
        cluster = Cluster(num_nodes=3, seed=0, router=router)
        assert cluster is router.cluster
        router.outstanding[2] = 7
        assert router.signal.estimate(0, 2) == 7.0

    def test_piggyback_updates_only_on_reply(self):
        router = RackRouter(policy="jsq2", signal="piggyback")
        Cluster(num_nodes=3, seed=0, router=router)
        router.outstanding[1] = 9
        assert router.signal.estimate(0, 1) == 0.0  # stale until a reply
        router.deliver_report(client=0, server=1, load=4.0)
        assert router.signal.estimate(0, 1) == 4.0
        assert router.signal.estimate(2, 1) == 0.0  # other clients unaware

    def test_wants_reply_reports(self):
        assert RackRouter(signal="piggyback").wants_reply_reports
        assert not RackRouter(signal="fresh").wants_reply_reports
        assert not RackRouter(signal="broadcast:1000").wants_reply_reports


class TestRackRouter:
    def test_outstanding_accounting(self):
        router = RackRouter(policy="random", signal="fresh")
        Cluster(num_nodes=4, seed=0, router=router)
        rng = np.random.default_rng(0)
        for _ in range(50):
            router.choose(0, rng)
        assert sum(router.outstanding) == 50
        assert router.stats.decisions == 50
        assert router.stats.routed == router.outstanding
        dst = next(i for i, n in enumerate(router.outstanding) if n)
        before = router.outstanding[dst]
        assert router.on_complete(dst) == before - 1
        assert sum(router.outstanding) == 49

    def test_fresh_signal_has_zero_error(self):
        router = RackRouter(policy="jsq2", signal="fresh")
        Cluster(num_nodes=4, seed=0, router=router)
        rng = np.random.default_rng(1)
        for _ in range(100):
            router.choose(rng.integers(0, 4), rng)
        assert router.stats.signal_error_count == 100
        assert router.stats.mean_signal_error == 0.0

    def test_routed_fractions_sum_to_one(self):
        router = RackRouter(policy="rr", signal="fresh")
        Cluster(num_nodes=4, seed=0, router=router)
        rng = np.random.default_rng(2)
        for _ in range(60):
            router.choose(0, rng)
        fractions = router.stats.routed_fractions()
        assert sum(fractions) == pytest.approx(1.0)
        assert fractions[0] == 0.0  # never routes to itself


class TestHeterogeneousCluster:
    def test_mesh_geometry(self):
        assert mesh_geometry(16) == (4, 4)
        assert mesh_geometry(8) == (2, 4)
        assert mesh_geometry(12) == (3, 4)
        assert mesh_geometry(7) == (1, 7)

    def test_mesh_geometry_every_count_factors_exactly(self):
        # Primes must degrade to a 1xN row, never raise; the float-sqrt
        # regression sent e.g. 25 -> isqrt-adjacent rows that missed
        # the exact factor.
        for cores in range(1, 33):
            rows, cols = mesh_geometry(cores)
            assert rows * cols == cores
            assert 1 <= rows <= cols
        assert mesh_geometry(25) == (5, 5)
        assert mesh_geometry(31) == (1, 31)  # prime
        with pytest.raises(ValueError):
            mesh_geometry(0)

    def test_core_counts_change_capacity(self):
        cluster = Cluster(num_nodes=3, core_counts=[16, 16, 8], seed=0)
        assert cluster.capacity_weight(0) == 16.0
        assert cluster.capacity_weight(2) == 8.0
        assert cluster.node_configs[2].num_cores == 8

    def test_speed_factors_change_capacity(self):
        cluster = Cluster(num_nodes=2, speed_factors=[1.0, 2.0], seed=0)
        assert cluster.capacity_weight(1) == 2 * cluster.capacity_weight(0)
        with pytest.raises(ValueError):
            Cluster(num_nodes=2, speed_factors=[1.0, 0.0])
        with pytest.raises(ValueError):
            Cluster(num_nodes=2, core_counts=[16])

    def test_sed_protects_weak_node(self):
        def run(policy):
            router = RackRouter(policy=policy, signal="fresh")
            cluster = Cluster(
                num_nodes=3, core_counts=[16, 16, 8], seed=0, router=router
            )
            result = cluster.run(per_node_mrps=18.0, requests_per_node=1_500)
            return result, router.stats.routed_fractions()

        random_result, random_frac = run("random")
        sed_result, sed_frac = run("sed")
        # SED diverts traffic away from the half-size node...
        assert sed_frac[2] < random_frac[2]
        # ...and that translates into a better cluster-wide tail.
        assert sed_result.p99_ns < random_result.p99_ns


class TestRackTelemetry:
    def test_router_telemetry_wiring(self):
        router = RackRouter(policy="jsq2", signal="piggyback")
        cluster = Cluster(num_nodes=3, seed=0, router=router, telemetry=True)
        result = cluster.run(per_node_mrps=10.0, requests_per_node=1_000)
        snap = result.telemetry
        assert snap is not None
        routed = [
            snap.counters[f"rack.routed[node{i}]"].value for i in range(3)
        ]
        assert sum(routed) == router.stats.decisions == 3_000
        assert routed == router.stats.routed
        hist = snap.histograms["rack.signal_error"]
        assert hist.count == 3_000
        # Piggyback estimates genuinely lag the ground truth.
        assert hist.total > 0
        for name in ("rack.outstanding[node0]", "shared_cq[node1]",
                     "send_credits[node2]"):
            assert name in snap.series

    def test_cluster_probes_off_without_telemetry(self):
        cluster = Cluster(num_nodes=2, seed=0, router=RackRouter("jsq2"))
        result = cluster.run(per_node_mrps=5.0, requests_per_node=500)
        assert result.telemetry is None
        assert cluster.router.decision_counters is None


class TestRackAcceptance:
    """The ext-rack headline claims, via the driver's own task fn."""

    REQUESTS = 750

    @classmethod
    def _ladder_results(cls, workers):
        wanted = ["policy/random", "policy/jsq2"] + [
            f"ladder/{signal}" for signal in STALENESS_LADDER[1:]
        ]
        by_key = {row[0]: row for row in _scenarios()}
        tasks = [
            by_key[key] + (cls.REQUESTS, task_seed("ext-rack", key, 0, 0))
            for key in wanted
        ]
        outcome = map_points(_run_rack_task, tasks, workers=workers)
        assert not outcome.failures
        results = {row["key"]: row for row in outcome.results}
        for row in results.values():
            row.pop("telemetry")  # snapshots compare by identity
        return results

    @classmethod
    def results(cls):
        if not hasattr(cls, "_cache"):
            cls._cache = cls._ladder_results(workers=2)
        return cls._cache

    def test_fresh_jsq2_beats_random_at_mid_load(self):
        results = self.results()
        assert (
            results["policy/jsq2"]["p99_ns"]
            < results["policy/random"]["p99_ns"]
        )

    def test_staleness_monotonically_erodes_advantage(self):
        results = self.results()
        random_p99 = results["policy/random"]["p99_ns"]
        advantages = [
            random_p99 / results["policy/jsq2"]["p99_ns"]
        ] + [
            random_p99 / results[f"ladder/{signal}"]["p99_ns"]
            for signal in STALENESS_LADDER[1:]
        ]
        assert advantages[0] > 1.0
        for fresher, staler in zip(advantages, advantages[1:]):
            assert staler < fresher
        # Staleness error grows down the ladder too.
        errors = [
            results["policy/jsq2"]["signal_error"]
        ] + [
            results[f"ladder/{signal}"]["signal_error"]
            for signal in STALENESS_LADDER[1:]
        ]
        assert errors == sorted(errors)

    def test_deterministic_at_any_worker_count(self):
        assert self._ladder_results(workers=1) == self.results()


class TestClusterDeterminism:
    def test_routed_run_bit_identical_across_repeats(self):
        def run():
            router = RackRouter(policy="jsq2", signal="broadcast:2000")
            cluster = Cluster(num_nodes=3, seed=11, router=router)
            result = cluster.run(per_node_mrps=15.0, requests_per_node=1_000)
            return (
                result.p99_ns,
                result.per_node_completed,
                router.stats.routed,
                router.stats.signal_error_sum,
            )

        assert run() == run()

    def test_run_cluster_workers_bit_identical(self):
        from repro.experiments import run_cluster

        serial = run_cluster(profile="smoke", seed=0, workers=1)
        parallel = run_cluster(profile="smoke", seed=0, workers=2)
        assert serial.data == parallel.data


class TestPodFabricPaths:
    def test_multi_pod_grouping(self):
        from repro.cluster import PodFabric

        fabric = PodFabric(9, pod_size=3, intra_pod_ns=40.0, inter_pod_ns=900.0)
        assert [fabric.pod_of(node) for node in range(9)] == [
            0, 0, 0, 1, 1, 1, 2, 2, 2,
        ]
        assert fabric.latency_ns(6, 8) == 40.0
        assert fabric.latency_ns(0, 8) == 900.0
        # Ragged last pod: 4 nodes in pods of 3 leaves node 3 alone.
        ragged = PodFabric(4, pod_size=3)
        assert ragged.pod_of(3) == 1
        assert ragged.latency_ns(2, 3) == ragged.inter_pod_ns

    def test_asymmetric_fabric_supported(self):
        from repro.cluster import Fabric

        class AsymmetricFabric(Fabric):
            """Uplink 10x slower than downlink, e.g. oversubscribed ToR."""

            def latency_ns(self, src, dst):
                self._check(src, dst)
                return 1_000.0 if src < dst else 100.0

        fabric = AsymmetricFabric(3)
        assert fabric.latency_ns(0, 2) == 1_000.0
        assert fabric.latency_ns(2, 0) == 100.0
        cluster = Cluster(num_nodes=3, fabric=fabric, seed=3)
        result = cluster.run(per_node_mrps=8.0, requests_per_node=1_000)
        assert result.completed == 3_000

    def test_pod_fabric_broadcast_staleness_pays_latency(self):
        # Broadcast estimates cross the fabric: a slow fabric makes the
        # same broadcast period strictly more stale.
        from repro.cluster import UniformFabric

        def mean_error(latency_ns):
            router = RackRouter(policy="jsq2", signal="broadcast:2000")
            cluster = Cluster(
                num_nodes=4,
                fabric=UniformFabric(4, latency_ns),
                seed=4,
                router=router,
            )
            cluster.run(per_node_mrps=18.0, requests_per_node=1_000)
            return router.stats.mean_signal_error

        assert mean_error(8_000.0) > mean_error(100.0)
