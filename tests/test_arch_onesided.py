"""One-sided remote reads/writes: the soNUMA baseline primitives."""

import pytest

from repro.arch import Chip, ChipConfig, OneSidedEngine
from repro.balancing import SingleQueue
from repro.sim import Environment, RngRegistry
from repro.workloads import MicrobenchCosts, MicrobenchProgram


def build():
    env = Environment()
    chip = Chip(
        env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
        RngRegistry(0),
    )
    SingleQueue().install(chip, RngRegistry(0).stream("d"))
    return chip, OneSidedEngine(chip)


def issue_and_run(chip, engine, op, size, core_id=0):
    results = []

    def client():
        completion = yield engine.issue(op, size, core_id=core_id)
        results.append(completion)

    chip.env.process(client())
    chip.env.run()
    return results[0]


class TestLatencyModel:
    def test_small_read_is_sub_microsecond(self):
        # soNUMA's headline: remote reads ≈ 300ns at rack scale.
        chip, engine = build()
        completion = issue_and_run(chip, engine, "read", 64)
        assert 150.0 < completion.latency_ns < 500.0

    def test_round_trip_matches_model(self):
        chip, engine = build()
        expected = engine.round_trip_ns("read", 64, core_id=0)
        completion = issue_and_run(chip, engine, "read", 64)
        assert completion.latency_ns == pytest.approx(expected)

    def test_latency_grows_with_payload(self):
        chip, engine = build()
        small = engine.round_trip_ns("read", 64, 0)
        large = engine.round_trip_ns("read", 4096, 0)
        assert large > small
        # Payload contributes per-packet time on both NI pipelines.
        per_packet = chip.config.backend_per_packet_ns
        assert large - small == pytest.approx((64 - 1) * 2 * per_packet)

    def test_read_write_symmetric_for_same_payload(self):
        _chip, engine = build()
        assert engine.round_trip_ns("read", 512, 0) == pytest.approx(
            engine.round_trip_ns("write", 512, 0)
        )

    def test_wire_latency_dominates_scaling(self):
        chip_far, engine_far = build()
        chip_far.config = chip_far.config  # default wire 100ns
        far = engine_far.round_trip_ns("read", 64, 0)

        env = Environment()
        near_config = ChipConfig(wire_latency_ns=10.0)
        chip_near = Chip(
            env, near_config, MicrobenchProgram(MicrobenchCosts.lean()),
            RngRegistry(0),
        )
        SingleQueue().install(chip_near, RngRegistry(0).stream("d"))
        near = OneSidedEngine(chip_near).round_trip_ns("read", 64, 0)
        assert far - near == pytest.approx(2 * 90.0)

    def test_invalid_op(self):
        _chip, engine = build()
        with pytest.raises(ValueError):
            engine.round_trip_ns("swap", 64, 0)
        with pytest.raises(ValueError):
            engine.issue("swap", 64)


class TestAccounting:
    def test_counters(self):
        chip, engine = build()
        issue_and_run(chip, engine, "read", 64)
        assert engine.reads_issued == 1
        assert engine.writes_issued == 0

    def test_backend_occupied_by_payload(self):
        chip, engine = build()
        issue_and_run(chip, engine, "read", 4096, core_id=0)
        backend = chip.backends[chip._nearest_backend(0)]
        assert backend.busy_ns > 0

    def test_no_dispatcher_involvement(self):
        # One-sided ops never create RPC work (§3.3).
        chip, engine = build()
        issue_and_run(chip, engine, "write", 512)
        assert all(d.dispatched == 0 for d in chip.dispatchers)
        assert chip.stats.completed == 0

    def test_concurrent_ops_complete(self):
        chip, engine = build()
        completions = []

        def client(core_id):
            completion = yield engine.issue("read", 512, core_id=core_id)
            completions.append(completion)

        for core_id in range(8):
            chip.env.process(client(core_id))
        chip.env.run()
        assert len(completions) == 8
        assert all(c.latency_ns > 0 for c in completions)
