"""Finite-buffer (M/M/c/K) results and their simulator counterpart."""

import numpy as np
import pytest

from repro.queueing import (
    erlang_b,
    erlang_c,
    mm1_mean_sojourn,
    mmck_blocking_probability,
    mmck_distribution,
    mmck_mean_jobs,
    mmck_throughput,
)


class TestDistribution:
    def test_sums_to_one(self):
        dist = mmck_distribution(4, 10, 3.0, 1.0)
        assert sum(dist) == pytest.approx(1.0)
        assert len(dist) == 11
        assert all(p >= 0 for p in dist)

    def test_mm11_two_states(self):
        # M/M/1/1: p0 = 1/(1+a), p1 = a/(1+a).
        dist = mmck_distribution(1, 1, 2.0, 1.0)
        assert dist[0] == pytest.approx(1.0 / 3.0)
        assert dist[1] == pytest.approx(2.0 / 3.0)

    def test_large_k_approaches_mm1(self):
        # K → ∞: mean jobs → M/M/1 value L = rho/(1-rho).
        lam, mu = 0.6, 1.0
        mean_jobs = mmck_mean_jobs(1, 200, lam, mu)
        assert mean_jobs == pytest.approx(0.6 / 0.4, rel=1e-6)
        # And mean sojourn via Little's law matches M/M/1.
        throughput = mmck_throughput(1, 200, lam, mu)
        assert mean_jobs / throughput == pytest.approx(
            mm1_mean_sojourn(lam, mu), rel=1e-6
        )

    def test_overloaded_system_is_still_stable(self):
        dist = mmck_distribution(2, 6, 10.0, 1.0)  # rho = 5
        assert sum(dist) == pytest.approx(1.0)
        # Mass concentrates at the cap.
        assert dist[-1] > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            mmck_distribution(0, 1, 1.0, 1.0)
        with pytest.raises(ValueError):
            mmck_distribution(4, 3, 1.0, 1.0)
        with pytest.raises(ValueError):
            mmck_distribution(1, 1, 0.0, 1.0)


class TestBlocking:
    def test_erlang_b_matches_k_equals_c(self):
        for servers, offered in ((1, 0.5), (4, 3.0), (16, 12.0)):
            assert erlang_b(servers, offered) == pytest.approx(
                mmck_blocking_probability(servers, servers, offered, 1.0)
            )

    def test_erlang_b_below_erlang_c(self):
        # Blocking (loss) <= probability of waiting (delay system).
        assert erlang_b(8, 6.0) < erlang_c(8, 6.0)

    def test_throughput_caps_at_capacity(self):
        # Overloaded finite system: accepted rate ≈ c·µ.
        accepted = mmck_throughput(4, 16, 100.0, 1.0)
        assert accepted == pytest.approx(4.0, rel=0.01)

    def test_more_buffer_less_blocking(self):
        blockings = [
            mmck_blocking_probability(4, k, 3.6, 1.0) for k in (4, 8, 16, 64)
        ]
        assert blockings == sorted(blockings, reverse=True)

    def test_erlang_b_validation(self):
        with pytest.raises(ValueError):
            erlang_b(0, 1.0)
        assert erlang_b(4, 0.0) == 0.0


class TestAgainstSimulatedFlowControl:
    def test_blocking_matches_slot_limited_simulation(self):
        """An M/M/c/K event simulation agrees with the closed form."""
        rng = np.random.default_rng(8)
        servers, capacity = 4, 8
        lam, mu = 6.0, 1.0
        n = 200_000
        gaps = rng.exponential(1.0 / lam, n)
        services = rng.exponential(1.0 / mu, n)

        # Direct M/M/c/K simulation: arrivals finding K jobs are lost.
        import heapq

        time = 0.0
        in_system = 0
        events = []  # departure times
        blocked = 0
        for index in range(n):
            time += gaps[index]
            while events and events[0] <= time:
                heapq.heappop(events)
                in_system -= 1
            if in_system >= capacity:
                blocked += 1
                continue
            in_system += 1
            # Start time: now if a server free, else after the
            # (in_system - servers)-th pending departure. For blocking
            # statistics only occupancy matters; schedule departure
            # after service once a server frees.
            if len(events) < servers:
                heapq.heappush(events, time + services[index])
            else:
                # FIFO: starts when the (len-servers+1)th departure frees
                start = sorted(events)[len(events) - servers]
                heapq.heappush(events, start + services[index])
        simulated = blocked / n
        analytic = mmck_blocking_probability(servers, capacity, lam, mu)
        assert simulated == pytest.approx(analytic, rel=0.05)
