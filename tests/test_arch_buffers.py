"""Messaging-domain buffers: footprint formula and slot state machines."""

import pytest

from repro.arch import (
    COUNTER_BLOCK_BYTES,
    MessagingDomain,
    ReceiveBuffer,
    ReceiveSlot,
    SEND_SLOT_BYTES,
    SendBuffer,
    SendSlot,
)


class TestFootprintFormula:
    """§4.2: 32·N·S + (max_msg_size + 64)·N·S bytes."""

    def test_formula(self):
        domain = MessagingDomain(num_nodes=200, slots_per_node=32, max_msg_bytes=2048)
        n_s = 200 * 32
        assert domain.send_buffer_bytes == 32 * n_s
        assert domain.receive_buffer_bytes == (2048 + 64) * n_s
        assert domain.footprint_bytes == 32 * n_s + (2048 + 64) * n_s

    def test_paper_scale_is_tens_of_mb(self):
        # §4.2: "for current deployments, that number should not exceed
        # a few tens of MBs".
        domain = MessagingDomain(num_nodes=200, slots_per_node=32, max_msg_bytes=2048)
        assert domain.footprint_bytes < 64 * 2**20

    def test_constants(self):
        assert SEND_SLOT_BYTES == 32
        assert COUNTER_BLOCK_BYTES == 64

    def test_slot_index_layout(self):
        domain = MessagingDomain(num_nodes=10, slots_per_node=4, max_msg_bytes=64)
        assert domain.receive_slot_index(0, 0) == 0
        assert domain.receive_slot_index(0, 3) == 3
        assert domain.receive_slot_index(1, 0) == 4
        assert domain.receive_slot_index(9, 3) == 39
        with pytest.raises(ValueError):
            domain.receive_slot_index(10, 0)
        with pytest.raises(ValueError):
            domain.receive_slot_index(0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            MessagingDomain(0, 1, 64)
        with pytest.raises(ValueError):
            MessagingDomain(1, 0, 64)
        with pytest.raises(ValueError):
            MessagingDomain(1, 1, 0)


class TestSendSlot:
    def test_occupy_and_invalidate(self):
        slot = SendSlot()
        assert not slot.valid
        slot.occupy(payload_ptr=0x1000, size_bytes=256)
        assert slot.valid
        slot.invalidate()
        assert not slot.valid
        assert slot.payload_ptr is None

    def test_double_occupy_rejected(self):
        slot = SendSlot()
        slot.occupy(0, 1)
        with pytest.raises(RuntimeError, match="already in use"):
            slot.occupy(0, 1)

    def test_replenish_free_slot_rejected(self):
        with pytest.raises(RuntimeError):
            SendSlot().invalidate()


class TestReceiveSlot:
    def test_counter_reaches_length(self):
        slot = ReceiveSlot()
        slot.begin_message(expected_packets=3)
        assert not slot.packet_arrived()
        assert not slot.packet_arrived()
        assert slot.packet_arrived()  # third packet completes

    def test_too_many_packets_rejected(self):
        slot = ReceiveSlot()
        slot.begin_message(1)
        slot.packet_arrived()
        with pytest.raises(RuntimeError, match="more packets"):
            slot.packet_arrived()

    def test_busy_slot_rejects_new_message(self):
        slot = ReceiveSlot()
        slot.begin_message(1)
        with pytest.raises(RuntimeError, match="in-flight"):
            slot.begin_message(1)

    def test_release_then_reuse(self):
        slot = ReceiveSlot()
        slot.begin_message(1)
        slot.packet_arrived()
        slot.release()
        slot.begin_message(2)  # reusable
        assert slot.expected_packets == 2

    def test_packet_for_idle_slot_rejected(self):
        with pytest.raises(RuntimeError):
            ReceiveSlot().packet_arrived()

    def test_release_idle_rejected(self):
        with pytest.raises(RuntimeError):
            ReceiveSlot().release()


class TestBuffers:
    def make_domain(self):
        return MessagingDomain(num_nodes=4, slots_per_node=2, max_msg_bytes=128)

    def test_send_buffer_occupancy_tracking(self):
        buffer = SendBuffer(self.make_domain())
        buffer.occupy(1, 0, payload_ptr=0, size_bytes=64)
        buffer.occupy(1, 1, payload_ptr=0, size_bytes=64)
        assert buffer.occupied == 2
        assert buffer.max_occupied == 2
        assert buffer.is_valid(1, 0)
        buffer.replenish(1, 0)
        assert buffer.occupied == 1
        assert not buffer.is_valid(1, 0)
        assert buffer.max_occupied == 2  # high-water mark persists

    def test_receive_buffer_lifecycle(self):
        buffer = ReceiveBuffer(self.make_domain())
        index = buffer.begin_message(2, 1, expected_packets=2)
        assert index == 2 * 2 + 1
        assert not buffer.packet_arrived(index)
        assert buffer.packet_arrived(index)
        buffer.release(index)
        assert buffer.occupied == 0
